// Package config implements RepEx's configuration-file interface: REMD
// simulations and resources are fully specified by two small JSON
// documents (the paper's usability requirement: "must be fully specified
// by configuration files ... a minimal set of parameters").
package config

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/md"
	"repro/internal/pilot"
)

// Simulation is the JSON shape of a simulation input file.
type Simulation struct {
	Name   string `json:"name"`
	Engine string `json:"engine"` // amber | amber-pmemd | namd
	// Atoms is the molecular system size used by the cost models.
	Atoms int `json:"atoms"`
	// Dimensions in exchange order, e.g. TSU.
	Dimensions []Dim `json:"dimensions"`
	// Pattern: "sync" (default) or "async".
	Pattern string `json:"pattern,omitempty"`
	// Trigger optionally selects the exchange-trigger policy directly:
	// "barrier", "window", "count", "adaptive" or "feedback". Empty
	// derives it from Pattern (sync -> barrier, async -> window).
	// "window", "adaptive" and "feedback" use async_window_sec (and
	// async_min_ready); "count" uses trigger_count; "feedback"
	// additionally reads target_acceptance and window_events.
	Trigger string `json:"trigger,omitempty"`
	// TriggerCount is the ready-replica threshold of the "count" trigger.
	TriggerCount int `json:"trigger_count,omitempty"`
	// TargetAcceptance is the "feedback" trigger's acceptance-ratio set
	// point: either a scalar in (0, 1) applied to every exchange
	// dimension (0 selects the built-in default), or a per-dimension
	// map keyed by dimension type code, e.g.
	// {"T": 0.4, "U": 0.25} — a code's target applies to every
	// dimension of that type; codes matching no dimension are rejected.
	// Dimensions a partial map does not cover remain under acceptance
	// control at the built-in default.
	TargetAcceptance TargetAcceptance `json:"target_acceptance,omitempty"`
	// WindowEvents is the rolling measurement window of the "feedback"
	// trigger and the analysis collector: the number of recent
	// neighbour-pair outcomes statistics are computed over (0 selects
	// the built-in default).
	WindowEvents    int     `json:"window_events,omitempty"`
	CoresPerReplica int     `json:"cores_per_replica"`
	StepsPerCycle   int     `json:"steps_per_cycle"`
	Cycles          int     `json:"cycles"`
	FaultPolicy     string  `json:"fault_policy,omitempty"` // drop | relaunch
	AsyncWindowSec  float64 `json:"async_window_sec,omitempty"`
	AsyncMinReady   int     `json:"async_min_ready,omitempty"`
	// ExchangeWorkers bounds the worker pool the exchange phase shards
	// its pair-probability evaluation across: 0 (default) sizes it from
	// the host's GOMAXPROCS, 1 forces the serial path. Results are
	// bit-identical for every setting.
	ExchangeWorkers int `json:"exchange_workers,omitempty"`
	// HistoryTail bounds the retained slot-assignment history to the
	// newest N exchange events (0 keeps everything). The report's
	// SlotRows count and rolling SlotFingerprint always describe the
	// full run regardless of the bound.
	HistoryTail int   `json:"history_tail,omitempty"`
	Seed        int64 `json:"seed,omitempty"`
	// Respace enables online ladder respacing under the "feedback"
	// trigger: a dimension whose controller stays saturated has its
	// window values re-fitted from measured per-pair acceptance at a
	// checkpoint boundary. Rejected for any other trigger.
	Respace *RespaceConfig `json:"respace,omitempty"`
	// Serve optionally enables the live observability HTTP server of
	// cmd/repex (GET /status, /stats, /metrics). The -listen flag
	// overrides it.
	Serve *Serve `json:"serve,omitempty"`
}

// TargetAcceptance is the acceptance set point of the feedback
// trigger: one scalar shared by every exchange dimension, or a
// per-dimension-type map ({"T": 0.4, "U": 0.25}). The zero value means
// "not configured".
type TargetAcceptance struct {
	// Scalar is the shared set point (scalar JSON form).
	Scalar float64
	// PerDim maps dimension type codes (T, U, S, H) to set points
	// (object JSON form).
	PerDim map[string]float64
}

// UnmarshalJSON accepts both forms: a bare number or an object keyed
// by dimension code.
func (t *TargetAcceptance) UnmarshalJSON(data []byte) error {
	*t = TargetAcceptance{}
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) > 0 && trimmed[0] == '{' {
		return json.Unmarshal(trimmed, &t.PerDim)
	}
	return json.Unmarshal(trimmed, &t.Scalar)
}

// MarshalJSON writes the form that was configured.
func (t TargetAcceptance) MarshalJSON() ([]byte, error) {
	if len(t.PerDim) > 0 {
		return json.Marshal(t.PerDim)
	}
	return json.Marshal(t.Scalar)
}

// IsZero reports an unconfigured set point.
func (t TargetAcceptance) IsZero() bool {
	return t.Scalar == 0 && len(t.PerDim) == 0
}

// RespaceConfig is the JSON shape of the respace block.
type RespaceConfig struct {
	// Enabled turns the mechanism on; a present-but-disabled block is
	// valid and inert.
	Enabled bool `json:"enabled"`
	// AfterSteps is how many consecutive saturated controller steps a
	// dimension must accumulate before it is re-fitted (0: the built-in
	// default).
	AfterSteps int `json:"after_steps,omitempty"`
	// MaxRefits bounds refits per dimension (0: the built-in default).
	MaxRefits int `json:"max_refits,omitempty"`
	// SkipDims opts dimension type codes out of respacing (e.g. ["U"]);
	// a code's opt-out applies to every dimension of that type, and
	// codes matching no dimension are rejected.
	SkipDims []string `json:"skip_dims,omitempty"`
}

// Serve configures the observability endpoint.
type Serve struct {
	// Listen is the host:port to bind (e.g. "127.0.0.1:8080"; port 0
	// picks a free port).
	Listen string `json:"listen"`
	// Pprof mounts net/http/pprof under /debug/pprof/ on the
	// observability server when true. Off by default: profile endpoints
	// are CPU-heavy to collect and expose binary layout, so enable them
	// only on trusted listeners.
	Pprof bool `json:"pprof,omitempty"`
}

// Dim is one exchange dimension. Either Values is given explicitly, or
// Count plus Min/Max generate a ladder (geometric for T, uniform
// otherwise). Umbrella dimensions take a torsion label and a force
// constant in the paper's kcal/mol/deg² units.
type Dim struct {
	Type    string    `json:"type"` // T | U | S
	Values  []float64 `json:"values,omitempty"`
	Count   int       `json:"count,omitempty"`
	Min     float64   `json:"min,omitempty"`
	Max     float64   `json:"max,omitempty"`
	Torsion string    `json:"torsion,omitempty"`
	KDeg2   float64   `json:"k_deg2,omitempty"`
}

// Resource is the JSON shape of a resource file.
type Resource struct {
	// Machine: "stampede", "supermic" or "small".
	Machine string `json:"machine"`
	// Nodes/CoresPerNode override the machine size (required for
	// "small").
	Nodes        int `json:"nodes,omitempty"`
	CoresPerNode int `json:"cores_per_node,omitempty"`
	// PilotCores is the allocation RepEx requests; it need not match
	// replicas x cores-per-replica (Execution Mode II otherwise).
	PilotCores int `json:"pilot_cores"`
	// WalltimeSec bounds each pilot's life: when it expires, executing
	// units fail, the allocation is released and the runtime launches a
	// replacement pilot (failover). 0 means unbounded.
	WalltimeSec  float64 `json:"walltime_sec,omitempty"`
	QueueWaitSec float64 `json:"queue_wait_sec,omitempty"`
	FailureProb  float64 `json:"failure_prob,omitempty"`
	// Pilots splits pilot_cores across this many concurrent pilots
	// behind one failover multi-runtime (0 or 1: a single pilot). Each
	// pilot must get at least one core.
	Pilots int   `json:"pilots,omitempty"`
	Seed   int64 `json:"seed,omitempty"`
	// PreemptNoticeSec is the default preemption notice window applied
	// to chaos "preempt" events that omit notice_sec (0: such events
	// preempt immediately).
	PreemptNoticeSec float64 `json:"preempt_notice_sec,omitempty"`
	// Chaos scripts resource faults — node losses that shrink a pilot,
	// spot-style preemption notices, elastic resizes — at fixed virtual
	// times, making lossy-resource runs bit-reproducible. See
	// docs/resources.md for the semantics of each kind.
	Chaos []ChaosEvent `json:"chaos,omitempty"`
}

// ChaosEvent is the JSON shape of one scripted resource fault.
type ChaosEvent struct {
	// AtSec is the virtual fire time in seconds from run start.
	AtSec float64 `json:"at_sec"`
	// Pilot is the routing slot the fault targets (0, the only slot,
	// under a single pilot).
	Pilot int `json:"pilot,omitempty"`
	// Kind is "node-loss", "preempt" or "resize".
	Kind string `json:"kind"`
	// Cores is the core count removed by "node-loss" or the signed
	// delta applied by "resize".
	Cores int `json:"cores,omitempty"`
	// NoticeSec is the preemption notice window in seconds ("preempt");
	// omitted, it inherits the resource's preempt_notice_sec.
	NoticeSec float64 `json:"notice_sec,omitempty"`
}

// PilotSpec is the pilot request parsed from a resource file.
type PilotSpec struct {
	// Cores is the allocation size.
	Cores int
	// Walltime is the pilot walltime bound in seconds (<= 0 unbounded).
	Walltime float64
	// Pilots is the concurrent pilot count the cores are split across
	// (<= 1: one pilot).
	Pilots int
	// Chaos is the resolved chaos plan (nil: no scripted faults).
	Chaos *pilot.ChaosPlan
}

// ParseSimulation decodes and validates a simulation file.
func ParseSimulation(data []byte) (*Simulation, error) {
	var s Simulation
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("config: %v", err)
	}
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Normalize applies the file-level defaults and validates the
// simulation, including a ToSpec dry run. ParseSimulation calls it
// after decoding; callers that build a Simulation in memory (the repexd
// launch path) call it directly.
func (s *Simulation) Normalize() error {
	if s.Atoms <= 0 {
		s.Atoms = 2881 // the paper's small benchmark system
	}
	if s.Engine == "" {
		s.Engine = "amber"
	}
	switch s.Engine {
	case "amber", "amber-pmemd", "namd":
	default:
		return fmt.Errorf("config: unknown engine %q", s.Engine)
	}
	if s.Serve != nil && s.Serve.Listen == "" {
		return fmt.Errorf("config: serve block requires a listen address (host:port)")
	}
	if _, err := s.ToSpec(); err != nil {
		return err
	}
	return nil
}

// ToSpec converts the file to a core.Spec.
func (s *Simulation) ToSpec() (*core.Spec, error) {
	spec := &core.Spec{
		Name:            s.Name,
		CoresPerReplica: s.CoresPerReplica,
		StepsPerCycle:   s.StepsPerCycle,
		Cycles:          s.Cycles,
		AsyncWindow:     s.AsyncWindowSec,
		AsyncMinReady:   s.AsyncMinReady,
		ExchangeWorkers: s.ExchangeWorkers,
		HistoryTail:     s.HistoryTail,
		Seed:            s.Seed,
	}
	switch s.Pattern {
	case "", "sync":
		spec.Pattern = core.PatternSynchronous
	case "async":
		spec.Pattern = core.PatternAsynchronous
	default:
		return nil, fmt.Errorf("config: unknown pattern %q (want sync or async)", s.Pattern)
	}
	// Dimensions are resolved before the trigger: per-dimension feedback
	// targets are keyed by dimension type code and validated against the
	// actual grid.
	for i, d := range s.Dimensions {
		dim, err := d.toDimension()
		if err != nil {
			return nil, fmt.Errorf("config: dimension %d: %v", i, err)
		}
		spec.Dims = append(spec.Dims, dim)
	}
	switch s.Trigger {
	case "":
		// Derived from Pattern.
	case "barrier":
		spec.Pattern = core.PatternSynchronous
		spec.Trigger = core.NewBarrierTrigger()
	case "window":
		if s.AsyncWindowSec <= 0 {
			return nil, fmt.Errorf("config: trigger \"window\" requires a positive async_window_sec")
		}
		spec.Pattern = core.PatternAsynchronous
		spec.Trigger = core.NewWindowTrigger(s.AsyncWindowSec, s.AsyncMinReady)
	case "count":
		if s.TriggerCount < 2 {
			return nil, fmt.Errorf("config: trigger \"count\" requires trigger_count >= 2")
		}
		spec.Pattern = core.PatternAsynchronous
		spec.Trigger = core.NewCountTrigger(s.TriggerCount)
	case "adaptive":
		if s.AsyncWindowSec <= 0 {
			return nil, fmt.Errorf("config: trigger \"adaptive\" requires a positive async_window_sec as the initial window")
		}
		spec.Pattern = core.PatternAsynchronous
		adaptive := core.NewAdaptiveTrigger(s.AsyncWindowSec)
		adaptive.MinReady = s.AsyncMinReady
		spec.Trigger = adaptive
	case "feedback":
		if s.AsyncWindowSec <= 0 {
			return nil, fmt.Errorf("config: trigger \"feedback\" requires a positive async_window_sec as the initial window")
		}
		if s.TargetAcceptance.Scalar < 0 || s.TargetAcceptance.Scalar >= 1 {
			return nil, fmt.Errorf("config: target_acceptance %g outside [0, 1) (0 selects the default %g)",
				s.TargetAcceptance.Scalar, core.DefaultTargetAcceptance)
		}
		spec.Pattern = core.PatternAsynchronous
		fb := core.NewFeedbackTrigger(s.AsyncWindowSec)
		fb.Target = s.TargetAcceptance.Scalar
		targets, err := s.TargetAcceptance.perDimTargets(spec.Dims)
		if err != nil {
			return nil, err
		}
		fb.Targets = targets
		fb.WindowEvents = s.WindowEvents
		fb.MinReady = s.AsyncMinReady
		spec.Trigger = fb
	default:
		return nil, fmt.Errorf("config: unknown trigger %q (want barrier, window, count, adaptive or feedback)", s.Trigger)
	}
	// target_acceptance configures only the feedback controller; on any
	// other policy it would be silently dead configuration, so reject it
	// rather than let the user believe acceptance control is active.
	// (window_events stays valid everywhere: it also sizes the analysis
	// collector's rolling statistics — but negative depths are nonsense
	// under any trigger.)
	if !s.TargetAcceptance.IsZero() && s.Trigger != "feedback" {
		return nil, fmt.Errorf("config: target_acceptance is set but trigger is %q; acceptance control requires \"trigger\": \"feedback\"",
			spec.TriggerName())
	}
	if s.WindowEvents < 0 {
		return nil, fmt.Errorf("config: window_events must be non-negative, got %d", s.WindowEvents)
	}
	// The respace block, like target_acceptance, only means something
	// under the feedback controller: its firing condition is the
	// controller's saturation diagnostic.
	if s.Respace != nil && s.Respace.Enabled {
		if s.Trigger != "feedback" {
			return nil, fmt.Errorf("config: respace is enabled but trigger is %q; ladder respacing requires \"trigger\": \"feedback\"",
				spec.TriggerName())
		}
		if s.Respace.AfterSteps < 0 {
			return nil, fmt.Errorf("config: respace after_steps must be non-negative, got %d", s.Respace.AfterSteps)
		}
		if s.Respace.MaxRefits < 0 {
			return nil, fmt.Errorf("config: respace max_refits must be non-negative, got %d", s.Respace.MaxRefits)
		}
		disabled, err := s.Respace.skipDims(spec.Dims)
		if err != nil {
			return nil, err
		}
		spec.Respace = &core.RespaceSpec{
			AfterSteps: s.Respace.AfterSteps,
			MaxRefits:  s.Respace.MaxRefits,
			Disabled:   disabled,
		}
	}
	switch s.FaultPolicy {
	case "", "drop":
		spec.FaultPolicy = core.FaultDrop
	case "relaunch":
		spec.FaultPolicy = core.FaultRelaunch
	default:
		return nil, fmt.Errorf("config: unknown fault policy %q", s.FaultPolicy)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// perDimTargets resolves the per-dimension-code map against the actual
// exchange dimensions: a code's target applies to every dimension of
// that type. Unknown codes and out-of-range ratios are configuration
// errors — a silently ignored target would leave the user believing a
// ladder is under acceptance control when it is not.
func (t TargetAcceptance) perDimTargets(dims []core.Dimension) ([]float64, error) {
	if len(t.PerDim) == 0 {
		return nil, nil
	}
	targets := make([]float64, len(dims))
	for code, v := range t.PerDim {
		typ, err := exchange.ParseType(code)
		if err != nil {
			return nil, fmt.Errorf("config: target_acceptance key %q is not a dimension code: %v", code, err)
		}
		if v <= 0 || v >= 1 {
			return nil, fmt.Errorf("config: target_acceptance[%q] = %g outside (0, 1)", code, v)
		}
		matched := false
		for i, d := range dims {
			if d.Type == typ {
				targets[i] = v
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("config: target_acceptance names dimension code %q, but the simulation has no %s dimension",
				code, typ)
		}
	}
	return targets, nil
}

// skipDims resolves the skip_dims code list against the actual exchange
// dimensions, mirroring perDimTargets: a code opts out every dimension
// of its type, and unknown or unmatched codes are configuration errors.
func (r *RespaceConfig) skipDims(dims []core.Dimension) ([]bool, error) {
	if len(r.SkipDims) == 0 {
		return nil, nil
	}
	disabled := make([]bool, len(dims))
	for _, code := range r.SkipDims {
		typ, err := exchange.ParseType(code)
		if err != nil {
			return nil, fmt.Errorf("config: respace skip_dims entry %q is not a dimension code: %v", code, err)
		}
		matched := false
		for i, d := range dims {
			if d.Type == typ {
				disabled[i] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("config: respace skip_dims names dimension code %q, but the simulation has no %s dimension",
				code, typ)
		}
	}
	return disabled, nil
}

func (d Dim) toDimension() (core.Dimension, error) {
	t, err := exchange.ParseType(d.Type)
	if err != nil {
		return core.Dimension{}, err
	}
	values := d.Values
	if len(values) == 0 {
		if d.Count <= 0 {
			return core.Dimension{}, fmt.Errorf("need values or count")
		}
		switch t {
		case exchange.Temperature:
			if d.Min <= 0 || d.Max <= d.Min {
				return core.Dimension{}, fmt.Errorf("temperature ladder needs 0 < min < max")
			}
			values = core.GeometricTemperatures(d.Min, d.Max, d.Count)
		case exchange.Umbrella:
			values = core.UniformWindows(d.Count)
		case exchange.Salt, exchange.PH:
			if d.Min <= 0 || d.Max <= d.Min {
				return core.Dimension{}, fmt.Errorf("%s ladder needs 0 < min < max", t)
			}
			values = make([]float64, d.Count)
			for i := range values {
				if d.Count == 1 {
					values[i] = d.Min
					continue
				}
				frac := float64(i) / float64(d.Count-1)
				values[i] = d.Min + frac*(d.Max-d.Min)
			}
		}
	} else if t == exchange.Umbrella {
		// Umbrella values are given in degrees in the file.
		conv := make([]float64, len(values))
		for i, v := range values {
			conv[i] = md.WrapAngle(md.Rad(v))
		}
		values = conv
	}
	dim := core.Dimension{Type: t, Values: values}
	if t == exchange.Umbrella {
		dim.Torsion = d.Torsion
		k := d.KDeg2
		if k == 0 {
			k = 0.02 // the paper's force constant
		}
		dim.K = k * (180 / 3.141592653589793) * (180 / 3.141592653589793)
	}
	return dim, nil
}

// ParseResource decodes and validates a resource file, returning the
// machine config and the pilot request (size + walltime + pilot count).
func ParseResource(data []byte) (cluster.Config, PilotSpec, error) {
	r, err := DecodeResource(data)
	if err != nil {
		return cluster.Config{}, PilotSpec{}, err
	}
	return r.Resolve()
}

// DecodeResource decodes a resource file without resolving it, so
// callers (cmd/repex) can apply command-line overrides before Resolve.
func DecodeResource(data []byte) (*Resource, error) {
	var r Resource
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("config: %v", err)
	}
	return &r, nil
}

// Resolve validates the resource and returns the machine config plus
// the pilot request. ParseResource calls it after decoding; the repexd
// launch path calls it on an in-memory Resource.
func (r *Resource) Resolve() (cluster.Config, PilotSpec, error) {
	var cfg cluster.Config
	switch r.Machine {
	case "stampede":
		cfg = cluster.Stampede()
	case "supermic":
		cfg = cluster.SuperMIC()
	case "small":
		n, c := r.Nodes, r.CoresPerNode
		if n <= 0 || c <= 0 {
			return cluster.Config{}, PilotSpec{}, fmt.Errorf("config: machine \"small\" needs nodes and cores_per_node")
		}
		cfg = cluster.Small(n, c)
	default:
		return cluster.Config{}, PilotSpec{}, fmt.Errorf("config: unknown machine %q", r.Machine)
	}
	if r.Nodes > 0 {
		cfg.Nodes = r.Nodes
	}
	if r.CoresPerNode > 0 {
		cfg.CoresPerNode = r.CoresPerNode
	}
	if r.QueueWaitSec > 0 {
		cfg.QueueWait = r.QueueWaitSec
	}
	if r.FailureProb > 0 {
		cfg.FailureProb = r.FailureProb
	}
	if r.PilotCores <= 0 {
		return cluster.Config{}, PilotSpec{}, fmt.Errorf("config: pilot_cores must be positive")
	}
	if r.WalltimeSec < 0 {
		return cluster.Config{}, PilotSpec{}, fmt.Errorf("config: walltime_sec must be non-negative")
	}
	if r.Pilots < 0 {
		return cluster.Config{}, PilotSpec{}, fmt.Errorf("config: pilots must be non-negative")
	}
	if r.Pilots > 1 && r.PilotCores/r.Pilots < 1 {
		return cluster.Config{}, PilotSpec{}, fmt.Errorf("config: %d pilot_cores cannot cover %d pilots", r.PilotCores, r.Pilots)
	}
	if r.PreemptNoticeSec < 0 {
		return cluster.Config{}, PilotSpec{}, fmt.Errorf("config: preempt_notice_sec must be non-negative")
	}
	plan, err := r.chaosPlan()
	if err != nil {
		return cluster.Config{}, PilotSpec{}, err
	}
	if err := cfg.Validate(); err != nil {
		return cluster.Config{}, PilotSpec{}, err
	}
	return cfg, PilotSpec{Cores: r.PilotCores, Walltime: r.WalltimeSec, Pilots: r.Pilots, Chaos: plan}, nil
}

// chaosPlan converts the resource's chaos script into a validated
// pilot.ChaosPlan, applying the preempt-notice default and checking
// every targeted slot against the configured pilot count.
func (r *Resource) chaosPlan() (*pilot.ChaosPlan, error) {
	if len(r.Chaos) == 0 {
		return nil, nil
	}
	slots := r.Pilots
	if slots < 1 {
		slots = 1
	}
	plan := &pilot.ChaosPlan{Events: make([]pilot.ChaosEvent, 0, len(r.Chaos))}
	for _, e := range r.Chaos {
		if e.Pilot >= slots {
			return nil, fmt.Errorf("config: chaos event at t=%g targets pilot %d, but only %d pilot slot(s) exist",
				e.AtSec, e.Pilot, slots)
		}
		notice := e.NoticeSec
		if e.Kind == pilot.ChaosPreempt && notice == 0 {
			notice = r.PreemptNoticeSec
		}
		plan.Events = append(plan.Events, pilot.ChaosEvent{
			At: e.AtSec, Pilot: e.Pilot, Kind: e.Kind, Cores: e.Cores, Notice: notice,
		})
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("config: %v", err)
	}
	return plan, nil
}
