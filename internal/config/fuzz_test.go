package config

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParseLaunch throws arbitrary bytes at the repexd run-launch
// parser — the daemon's network-facing input — and requires it to
// either return an error or a launch that survives a second
// normalization, without panicking. The corpus is seeded from every
// committed config file: simulation and resource files are wrapped
// into launch bodies (the exact shape POST /runs receives) and raw
// file bytes ride along for structural variety.
func FuzzParseLaunch(f *testing.F) {
	files, err := filepath.Glob(filepath.Join("..", "..", "configs", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	if len(files) == 0 {
		f.Fatal("no committed configs found to seed the corpus")
	}
	var sims, ress []string
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Classify by shape so realistic launch bodies get seeded too.
		if _, err := ParseSimulation(data); err == nil {
			sims = append(sims, string(data))
		}
		if _, _, err := ParseResource(data); err == nil {
			ress = append(ress, string(data))
		}
	}
	if len(sims) == 0 || len(ress) == 0 {
		f.Fatalf("corpus classified %d sim and %d res files; want both non-empty", len(sims), len(ress))
	}
	for _, sim := range sims {
		for _, res := range ress {
			f.Add([]byte(`{"sim":` + sim + `,"res":` + res + `}`))
			f.Add([]byte(`{"sim":` + sim + `,"res":` + res +
				`,"checkpoint":"/tmp/ck.json","checkpoint_every":3}`))
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"sim":{},"res":{}}`))
	f.Add([]byte(`{"sim":null,"res":null}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ParseLaunch(data)
		if err != nil {
			if l != nil {
				t.Fatalf("ParseLaunch returned both a launch and error %v", err)
			}
			return
		}
		if l.Sim == nil || l.Res == nil {
			t.Fatal("accepted launch missing a block")
		}
		// An accepted launch must be internally consistent: Normalize
		// and Resolve were already run, so running them again must
		// succeed (idempotence), and the spec dry run must still pass.
		if err := l.Sim.Normalize(); err != nil {
			t.Fatalf("accepted launch fails re-normalization: %v", err)
		}
		if _, err := l.Sim.ToSpec(); err != nil {
			t.Fatalf("accepted launch fails spec construction: %v", err)
		}
		if _, _, err := l.Res.Resolve(); err != nil {
			t.Fatalf("accepted launch fails resource re-resolution: %v", err)
		}
		// Accepted launches round-trip through JSON: the daemon echoes
		// the body into run metadata.
		if _, err := json.Marshal(l); err != nil {
			t.Fatalf("accepted launch does not re-marshal: %v", err)
		}
		if l.CheckpointEvery > 0 && strings.TrimSpace(l.Checkpoint) == "" {
			t.Fatal("accepted checkpoint_every without a checkpoint path")
		}
	})
}
