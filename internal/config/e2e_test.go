package config_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engines"
)

// End-to-end tests of the shipped example configuration files: parse
// them, run the simulation they describe on the virtual cluster and
// check the outcome, exactly as cmd/repex does.

func readConfig(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "configs", name))
	if err != nil {
		t.Fatalf("reading shipped config: %v", err)
	}
	return data
}

func runConfig(t *testing.T, simName, resName string) *core.Report {
	t.Helper()
	simFile, err := config.ParseSimulation(readConfig(t, simName))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := simFile.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	machine, pl, err := config.ParseResource(readConfig(t, resName))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := bench.Run(bench.RunParams{
		Spec:          spec,
		Cluster:       machine,
		PilotCores:    pl.Cores,
		PilotWalltime: pl.Walltime,
		NewEngine:     func(s int64) core.Engine { return engines.NewAmberVirtual(simFile.Atoms, s) },
		Seed:          spec.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestShippedTSUConfig(t *testing.T) {
	rep := runConfig(t, "tsu_supermic.json", "supermic_144.json")
	if rep.DimCode != "TSU" || rep.Replicas != 6*3*8 {
		t.Fatalf("report %s/%d, want TSU/144", rep.DimCode, rep.Replicas)
	}
	if rep.Mode != core.ModeI {
		t.Fatalf("mode %v, want I (144 cores for 144 replicas)", rep.Mode)
	}
	d := rep.Decompose()
	if d.TMD < 400 || d.TMD > 440 {
		t.Fatalf("3-dim cycle MD %v, want ~3x139.6", d.TMD)
	}
}

func TestShippedFeedbackConfig(t *testing.T) {
	simFile, err := config.ParseSimulation(readConfig(t, "feedback_small.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := simFile.ToSpec()
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.TriggerName(); got != "feedback" {
		t.Fatalf("trigger %q, want feedback", got)
	}
	rep := runConfig(t, "feedback_small.json", "small_cluster_16.json")
	if rep.Trigger != "feedback" {
		t.Fatalf("report trigger %q, want feedback", rep.Trigger)
	}
	if rep.ExchangeEvents == 0 {
		t.Fatal("no exchange events under the feedback trigger")
	}
	acc := rep.AcceptanceRatioByDim(0)
	if acc <= 0 || acc >= 1 {
		t.Fatalf("acceptance %v out of (0,1)", acc)
	}
}

func TestShippedAsyncPHConfig(t *testing.T) {
	rep := runConfig(t, "async_ph_small.json", "small_cluster_16.json")
	if rep.DimCode != "H" {
		t.Fatalf("dim code %q, want H", rep.DimCode)
	}
	if rep.Pattern != core.PatternAsynchronous {
		t.Fatal("pattern lost in config round trip")
	}
	if rep.ExchangeEvents == 0 {
		t.Fatal("no asynchronous exchange events")
	}
	acc := rep.AcceptanceRatioByDim(0)
	if acc <= 0 || acc >= 1 {
		t.Fatalf("pH acceptance %v out of (0,1)", acc)
	}
}
