package config

import (
	"encoding/json"
	"fmt"
)

// Launch is the JSON body of a repexd POST /runs request: one
// simulation plus the resource it runs on, optionally resuming from a
// checkpoint file and writing new checkpoints while running.
type Launch struct {
	// Sim is the simulation block, in the exact shape of a simulation
	// config file.
	Sim *Simulation `json:"sim"`
	// Res is the resource block, in the exact shape of a resource
	// config file.
	Res *Resource `json:"res"`
	// Resume is a checkpoint file path on the daemon host to resume
	// from (empty: start fresh).
	Resume string `json:"resume,omitempty"`
	// Checkpoint is the file path the run writes its snapshots to —
	// periodically every CheckpointEvery events, and always at the
	// cancellation boundary. Empty disables checkpointing.
	Checkpoint string `json:"checkpoint,omitempty"`
	// CheckpointEvery is the exchange-event period of periodic
	// snapshots (0 with a Checkpoint path: only the cancellation
	// snapshot is written).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// ParseLaunch decodes and validates a run-launch request body: both
// blocks present, the simulation normalized (defaults + spec dry run)
// and the resource resolved.
func ParseLaunch(data []byte) (*Launch, error) {
	var l Launch
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("config: %v", err)
	}
	if l.Sim == nil {
		return nil, fmt.Errorf("config: launch request needs a \"sim\" block")
	}
	if l.Res == nil {
		return nil, fmt.Errorf("config: launch request needs a \"res\" block")
	}
	if err := l.Sim.Normalize(); err != nil {
		return nil, err
	}
	if _, _, err := l.Res.Resolve(); err != nil {
		return nil, err
	}
	if l.CheckpointEvery < 0 {
		return nil, fmt.Errorf("config: checkpoint_every must be non-negative")
	}
	if l.CheckpointEvery > 0 && l.Checkpoint == "" {
		return nil, fmt.Errorf("config: checkpoint_every without a checkpoint path")
	}
	return &l, nil
}

// Daemon is the JSON shape of a repexd daemon config file (every key
// optional; flags override).
type Daemon struct {
	// Listen is the daemon's host:port (default "127.0.0.1:8600"; port
	// 0 picks a free port).
	Listen string `json:"listen,omitempty"`
	// TotalCores bounds the process-wide core pool shared by all
	// concurrent runs: a run whose pilot_cores do not fit is rejected
	// with 429. 0 means unbounded.
	TotalCores int `json:"total_cores,omitempty"`
	// MaxRuns bounds concurrently active (non-terminal) runs. 0 means
	// unbounded.
	MaxRuns int `json:"max_runs,omitempty"`
	// DrainTimeoutSec bounds the graceful SIGTERM drain: cancelled runs
	// that have not reached a terminal state by then are abandoned.
	// 0 selects the default 30 s.
	DrainTimeoutSec float64 `json:"drain_timeout_sec,omitempty"`
	// TraceEvents is the per-run flight-recorder capacity in spans:
	// every launched run records its most recent TraceEvents spans,
	// served as Chrome trace-event JSON at GET /runs/{id}/trace. 0
	// selects the recorder's default depth.
	TraceEvents int `json:"trace_events,omitempty"`
	// Pprof mounts net/http/pprof under /debug/pprof/ when true. Off by
	// default: profile endpoints are CPU-heavy to collect and expose
	// binary layout, so enable them only on trusted listeners.
	Pprof bool `json:"pprof,omitempty"`
}

// ParseDaemon decodes and validates a daemon config file.
func ParseDaemon(data []byte) (*Daemon, error) {
	var d Daemon
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("config: %v", err)
	}
	if err := d.Normalize(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Normalize applies the daemon defaults and validates the values.
func (d *Daemon) Normalize() error {
	if d.Listen == "" {
		d.Listen = "127.0.0.1:8600"
	}
	if d.TotalCores < 0 {
		return fmt.Errorf("config: total_cores must be non-negative")
	}
	if d.MaxRuns < 0 {
		return fmt.Errorf("config: max_runs must be non-negative")
	}
	if d.DrainTimeoutSec < 0 {
		return fmt.Errorf("config: drain_timeout_sec must be non-negative")
	}
	if d.DrainTimeoutSec == 0 {
		d.DrainTimeoutSec = 30
	}
	if d.TraceEvents < 0 {
		return fmt.Errorf("config: trace_events must be non-negative")
	}
	return nil
}
