package config

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
)

// TestConfigKeysDocumented is the docs-drift guard for the
// configuration-file reference: every JSON key reachable from the
// Simulation and Resource file shapes must appear (as a backticked
// `key` cell) in docs/config.md. Adding a config field without
// documenting it fails here, naming the missing key.
func TestConfigKeysDocumented(t *testing.T) {
	data, err := os.ReadFile("../../docs/config.md")
	if err != nil {
		t.Fatalf("reading config reference: %v", err)
	}
	doc := string(data)

	var keys []string
	seen := map[reflect.Type]bool{}
	var walk func(typ reflect.Type, owner string)
	walk = func(typ reflect.Type, owner string) {
		for typ.Kind() == reflect.Pointer || typ.Kind() == reflect.Slice {
			typ = typ.Elem()
		}
		if typ.Kind() != reflect.Struct || seen[typ] {
			return
		}
		// Types with custom JSON marshaling (TargetAcceptance) are leaves:
		// their Go fields are not file keys.
		marshaler := reflect.TypeOf((*json.Marshaler)(nil)).Elem()
		if typ.Implements(marshaler) || reflect.PointerTo(typ).Implements(marshaler) {
			return
		}
		seen[typ] = true
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			tag := f.Tag.Get("json")
			if tag == "" || tag == "-" {
				// A file-shape field without a JSON tag would silently
				// marshal under its Go name; require an explicit tag so
				// the documented key is the real one.
				t.Errorf("%s.%s has no json tag", owner, f.Name)
				continue
			}
			key := strings.Split(tag, ",")[0]
			keys = append(keys, fmt.Sprintf("%s (%s.%s)", key, owner, f.Name))
			walk(f.Type, owner+"."+f.Name)
		}
	}
	walk(reflect.TypeOf(Simulation{}), "Simulation")
	walk(reflect.TypeOf(Resource{}), "Resource")
	walk(reflect.TypeOf(Launch{}), "Launch")
	walk(reflect.TypeOf(Daemon{}), "Daemon")

	if len(keys) < 20 {
		t.Fatalf("reflection walk found only %d keys; file shapes not reached", len(keys))
	}
	for _, entry := range keys {
		key := strings.Split(entry, " ")[0]
		if !strings.Contains(doc, "`"+key+"`") {
			t.Errorf("docs/config.md does not document %s", entry)
		}
	}
}
