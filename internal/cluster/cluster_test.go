package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"valid", func(c *Config) {}, true},
		{"zero nodes", func(c *Config) { c.Nodes = 0 }, false},
		{"zero cores", func(c *Config) { c.CoresPerNode = 0 }, false},
		{"zero speed", func(c *Config) { c.SpeedFactor = 0 }, false},
		{"neg meta", func(c *Config) { c.FS.MetaLatency = -1 }, false},
		{"zero bw", func(c *Config) { c.FS.Bandwidth = 0 }, false},
		{"bad failure prob", func(c *Config) { c.FailureProb = 1.5 }, false},
	}
	for _, tc := range cases {
		cfg := Stampede()
		tc.mut(&cfg)
		err := cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() err = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestPresetsAreValid(t *testing.T) {
	for _, cfg := range []Config{Stampede(), SuperMIC(), Small(8, 16)} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", cfg.Name, err)
		}
	}
}

func TestTotalCores(t *testing.T) {
	cfg := Small(8, 16)
	if got := cfg.TotalCores(); got != 128 {
		t.Fatalf("TotalCores = %d, want 128", got)
	}
}

func TestAllocateAfterQueueWait(t *testing.T) {
	e := sim.NewEnv()
	cfg := Small(4, 8)
	cfg.QueueWait = 12
	cl := MustNew(e, cfg, 1)
	var granted float64
	e.Go("p", func(p *sim.Proc) {
		a, err := cl.Allocate(p, 16)
		if err != nil {
			t.Errorf("Allocate: %v", err)
			return
		}
		granted = a.Granted
		a.Release()
	})
	e.Run()
	if granted != 12 {
		t.Fatalf("granted at %v, want 12 (queue wait)", granted)
	}
	if cl.CoresInUse() != 0 {
		t.Fatalf("cores in use %d after release, want 0", cl.CoresInUse())
	}
}

func TestAllocateTooLarge(t *testing.T) {
	e := sim.NewEnv()
	cl := MustNew(e, Small(2, 4), 1)
	e.Go("p", func(p *sim.Proc) {
		if _, err := cl.Allocate(p, 9); err == nil {
			t.Error("Allocate(9) on 8-core machine succeeded, want error")
		}
		if _, err := cl.Allocate(p, 0); err == nil {
			t.Error("Allocate(0) succeeded, want error")
		}
	})
	e.Run()
}

func TestAllocationContention(t *testing.T) {
	// Two full-machine allocations must serialize.
	e := sim.NewEnv()
	cfg := Small(2, 4)
	cfg.QueueWait = 0
	cl := MustNew(e, cfg, 1)
	var second float64
	e.Go("a", func(p *sim.Proc) {
		a, _ := cl.Allocate(p, 8)
		p.Sleep(100)
		a.Release()
	})
	e.Go("b", func(p *sim.Proc) {
		a, _ := cl.Allocate(p, 8)
		second = p.Now()
		a.Release()
	})
	e.Run()
	if second != 100 {
		t.Fatalf("second allocation granted at %v, want 100", second)
	}
}

func TestDoubleReleaseIsIdempotent(t *testing.T) {
	e := sim.NewEnv()
	cl := MustNew(e, Small(2, 4), 1)
	e.Go("p", func(p *sim.Proc) {
		a, _ := cl.Allocate(p, 4)
		a.Release()
		a.Release() // must not panic or double-free
	})
	e.Run()
	if cl.CoresInUse() != 0 {
		t.Fatalf("cores in use %d, want 0", cl.CoresInUse())
	}
}

func TestStageFilesMetadataSerialization(t *testing.T) {
	// N concurrent single-file stagings serialize at the metadata
	// server: makespan ~= N * MetaLatency.
	e := sim.NewEnv()
	cfg := Small(4, 8)
	cfg.FS.MetaLatency = 0.01
	cfg.FS.Bandwidth = 1e12 // transfer time negligible
	cl := MustNew(e, cfg, 1)
	const n = 100
	for i := 0; i < n; i++ {
		e.Go("stager", func(p *sim.Proc) {
			cl.StageFiles(p, 1, 10)
		})
	}
	e.Run()
	want := n * 0.01
	if math.Abs(e.Now()-want) > 1e-6 {
		t.Fatalf("makespan %v, want %v (serialized metadata)", e.Now(), want)
	}
}

func TestStageFilesBandwidth(t *testing.T) {
	e := sim.NewEnv()
	cfg := Small(4, 8)
	cfg.FS.MetaLatency = 0
	cfg.FS.Bandwidth = 1e6
	cl := MustNew(e, cfg, 1)
	var elapsed float64
	e.Go("p", func(p *sim.Proc) {
		elapsed = cl.StageFiles(p, 1, 2e6)
	})
	e.Run()
	if math.Abs(elapsed-2.0) > 1e-9 {
		t.Fatalf("transfer of 2 MB at 1 MB/s took %v, want 2", elapsed)
	}
}

func TestStageFilesZeroIsFree(t *testing.T) {
	e := sim.NewEnv()
	cl := MustNew(e, Small(4, 8), 1)
	e.Go("p", func(p *sim.Proc) {
		if d := cl.StageFiles(p, 0, 0); d != 0 {
			t.Errorf("StageFiles(0,0) took %v, want 0", d)
		}
	})
	e.Run()
}

func TestScaleDurationSpeedFactor(t *testing.T) {
	e := sim.NewEnv()
	cfg := Small(2, 4)
	cfg.SpeedFactor = 2.0
	cfg.ExecJitter = 0
	cl := MustNew(e, cfg, 1)
	if got := cl.ScaleDuration(10); got != 5 {
		t.Fatalf("ScaleDuration(10) = %v, want 5 on 2x machine", got)
	}
}

func TestScaleDurationJitterMeanNearOne(t *testing.T) {
	e := sim.NewEnv()
	cfg := Small(2, 4)
	cfg.SpeedFactor = 1
	cfg.ExecJitter = 0.1
	cl := MustNew(e, cfg, 7)
	sum := 0.0
	const n = 5000
	for i := 0; i < n; i++ {
		sum += cl.ScaleDuration(1)
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("jitter mean %v, want ~1", mean)
	}
}

func TestTaskFailsRate(t *testing.T) {
	e := sim.NewEnv()
	cfg := Small(2, 4)
	cfg.FailureProb = 0.2
	cl := MustNew(e, cfg, 99)
	fails := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if cl.TaskFails() {
			fails++
		}
	}
	rate := float64(fails) / n
	if math.Abs(rate-0.2) > 0.02 {
		t.Fatalf("failure rate %v, want ~0.2", rate)
	}
	_, _, launched, failed := cl.Stats()
	if launched != n || failed != fails {
		t.Fatalf("stats launched=%d failed=%d, want %d/%d", launched, failed, n, fails)
	}
}

func TestTaskFailsZeroProb(t *testing.T) {
	e := sim.NewEnv()
	cl := MustNew(e, Small(2, 4), 1)
	for i := 0; i < 1000; i++ {
		if cl.TaskFails() {
			t.Fatal("TaskFails() = true with zero failure probability")
		}
	}
}

// Property: staging elapsed time is nondecreasing in both file count and
// byte volume.
func TestPropertyStagingMonotonic(t *testing.T) {
	f := func(nf uint8, kb uint16) bool {
		run := func(files int, bytes int64) float64 {
			e := sim.NewEnv()
			cfg := Small(2, 4)
			cfg.FS.MetaLatency = 0.001
			cfg.FS.Bandwidth = 1e6
			cl := MustNew(e, cfg, 1)
			var d float64
			e.Go("p", func(p *sim.Proc) { d = cl.StageFiles(p, files, bytes) })
			e.Run()
			return d
		}
		files := int(nf % 20)
		bytes := int64(kb) * 100
		base := run(files, bytes)
		moreFiles := run(files+1, bytes)
		moreBytes := run(files, bytes+1000)
		return moreFiles >= base && moreBytes >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
