// Package cluster models an HPC machine in virtual time: a pool of
// compute nodes, a batch queue with pilot provisioning delay, a shared
// parallel filesystem whose metadata server serializes per-file
// operations, per-task launch overheads and probabilistic task failures.
//
// The model substitutes for the XSEDE machines (Stampede, SuperMIC) used
// in the RepEx paper. Its purpose is not cycle accuracy but preserving the
// queueing, contention and overhead *shapes* the paper measures: data
// times dominated by metadata traffic, RADICAL-Pilot launch overhead
// proportional to the number of concurrently launched tasks, and the
// Execution Mode II wave-scheduling penalty.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sim"
)

// FSConfig describes the shared parallel filesystem.
type FSConfig struct {
	// MetaLatency is the service time of one metadata operation (file
	// create/open) at the metadata server, which handles operations one
	// at a time. Many small staged files therefore serialize here,
	// which is what makes the paper's "data time" grow with replica
	// count even though payloads are tiny.
	MetaLatency float64
	// Bandwidth is the aggregate transfer bandwidth in bytes/second.
	Bandwidth float64
}

// Config describes a machine.
type Config struct {
	Name         string
	Nodes        int
	CoresPerNode int
	// SpeedFactor scales compute durations: a task that takes D seconds
	// on the reference machine takes D/SpeedFactor here.
	SpeedFactor float64
	// QueueWait is the batch-queue wait before a pilot's allocation
	// becomes active.
	QueueWait float64
	// LaunchGap is the serialization gap of the pilot agent's task
	// launcher: successive task launches are spaced by at least this
	// much, making launch overhead proportional to the task count.
	LaunchGap float64
	// LaunchLatency is the fixed per-task launch cost once the launcher
	// picks the task up.
	LaunchLatency float64
	// WavePenalty is the extra scheduling delay charged to a task that
	// had to wait for cores (i.e. ran in a second or later wave). It
	// models the MPI task scheduling issue of RADICAL-Pilot 0.35 that
	// the paper blames for the Execution Mode II efficiency dip
	// (Figure 11b).
	WavePenalty float64
	// FailureProb is the per-task probability of failure.
	FailureProb float64
	// ExecJitter is the relative standard deviation of task execution
	// time (lognormal), modelling OS noise and per-replica variation.
	ExecJitter float64
	FS         FSConfig
}

// TotalCores returns Nodes*CoresPerNode.
func (c Config) TotalCores() int { return c.Nodes * c.CoresPerNode }

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster %q: nodes must be positive, got %d", c.Name, c.Nodes)
	case c.CoresPerNode <= 0:
		return fmt.Errorf("cluster %q: cores/node must be positive, got %d", c.Name, c.CoresPerNode)
	case c.SpeedFactor <= 0:
		return fmt.Errorf("cluster %q: speed factor must be positive, got %g", c.Name, c.SpeedFactor)
	case c.FS.MetaLatency < 0 || c.FS.Bandwidth <= 0:
		return fmt.Errorf("cluster %q: invalid filesystem config %+v", c.Name, c.FS)
	case c.FailureProb < 0 || c.FailureProb > 1:
		return fmt.Errorf("cluster %q: failure probability %g out of [0,1]", c.Name, c.FailureProb)
	}
	return nil
}

// Stampede returns a model of the TACC Stampede machine (Sandy Bridge,
// 16 cores/node) as used for the paper's M-REMD and multi-core-replica
// experiments.
func Stampede() Config {
	return Config{
		Name:          "stampede",
		Nodes:         6400,
		CoresPerNode:  16,
		SpeedFactor:   1.0,
		QueueWait:     30,
		LaunchGap:     0.040,
		LaunchLatency: 0.25,
		WavePenalty:   0.35,
		ExecJitter:    0.04,
		FS:            FSConfig{MetaLatency: 0.0010, Bandwidth: 1.5e9},
	}
}

// SuperMIC returns a model of the LSU SuperMIC machine (Ivy Bridge,
// 20 cores/node) used for the paper's 1D-REMD and overhead experiments.
func SuperMIC() Config {
	return Config{
		Name:          "supermic",
		Nodes:         360,
		CoresPerNode:  20,
		SpeedFactor:   1.18,
		QueueWait:     20,
		LaunchGap:     0.038,
		LaunchLatency: 0.22,
		WavePenalty:   0.35,
		ExecJitter:    0.04,
		FS:            FSConfig{MetaLatency: 0.0009, Bandwidth: 1.2e9},
	}
}

// Small returns a small commodity cluster, useful for Execution Mode II
// demonstrations (more replicas than cores).
func Small(nodes, coresPerNode int) Config {
	return Config{
		Name:          fmt.Sprintf("small-%dx%d", nodes, coresPerNode),
		Nodes:         nodes,
		CoresPerNode:  coresPerNode,
		SpeedFactor:   0.9,
		QueueWait:     5,
		LaunchGap:     0.030,
		LaunchLatency: 0.15,
		WavePenalty:   0.35,
		ExecJitter:    0.05,
		FS:            FSConfig{MetaLatency: 0.0040, Bandwidth: 5e8},
	}
}

// Cluster is a live machine instance in a simulation environment.
type Cluster struct {
	env   *sim.Env
	cfg   Config
	cores *sim.Resource
	mds   *sim.Resource // metadata server, capacity 1
	rng   *rand.Rand

	filesStaged   int
	bytesStaged   int64
	tasksLaunched int
	tasksFailed   int
}

// New instantiates a cluster on env with a deterministic RNG seed.
func New(env *sim.Env, cfg Config, seed int64) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{
		env:   env,
		cfg:   cfg,
		cores: sim.NewResource(env, cfg.TotalCores()),
		mds:   sim.NewResource(env, 1),
		rng:   rand.New(rand.NewSource(seed)),
	}, nil
}

// MustNew is New but panics on configuration error (for tests/examples).
func MustNew(env *sim.Env, cfg Config, seed int64) *Cluster {
	c, err := New(env, cfg, seed)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the machine configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Env returns the simulation environment.
func (c *Cluster) Env() *sim.Env { return c.env }

// TotalCores returns the machine-wide core count.
func (c *Cluster) TotalCores() int { return c.cfg.TotalCores() }

// CoresInUse returns the number of cores currently allocated.
func (c *Cluster) CoresInUse() int { return c.cores.InUse() }

// Allocation is a granted block of cores, to be released when done.
type Allocation struct {
	c        *Cluster
	Cores    int
	Granted  float64 // virtual time the allocation became active
	released bool
}

// Allocate blocks through the batch queue and returns an active
// allocation of n cores. It must be called from a simulation process.
func (c *Cluster) Allocate(p *sim.Proc, n int) (*Allocation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster %s: allocation size must be positive, got %d", c.cfg.Name, n)
	}
	if n > c.TotalCores() {
		return nil, fmt.Errorf("cluster %s: allocation of %d cores exceeds machine size %d",
			c.cfg.Name, n, c.TotalCores())
	}
	p.Sleep(c.cfg.QueueWait)
	c.cores.Acquire(p, n)
	return &Allocation{c: c, Cores: n, Granted: p.Now()}, nil
}

// Release returns the allocation's cores to the machine.
func (a *Allocation) Release() {
	if a.released {
		return
	}
	a.released = true
	a.c.cores.Release(a.Cores)
}

// ReleasePartial returns n cores of the allocation to the machine
// without ending it — the node-loss path: the allocation keeps running,
// smaller. Returns the number actually released (clamped to the cores
// still held; 0 after Release).
func (a *Allocation) ReleasePartial(n int) int {
	if a.released || n <= 0 {
		return 0
	}
	if n > a.Cores {
		n = a.Cores
	}
	a.Cores -= n
	a.c.cores.Release(n)
	if a.Cores == 0 {
		a.released = true
	}
	return n
}

// Grow attempts to extend the allocation by n cores without queueing
// (an elastic resize must not deadlock behind the batch queue) and
// reports success.
func (a *Allocation) Grow(n int) bool {
	if a.released || n <= 0 {
		return false
	}
	if !a.c.cores.TryAcquire(n) {
		return false
	}
	a.Cores += n
	return true
}

// ScaleDuration converts a reference-machine compute duration to this
// machine, applying the speed factor and lognormal execution jitter.
func (c *Cluster) ScaleDuration(d float64) float64 {
	d /= c.cfg.SpeedFactor
	if c.cfg.ExecJitter > 0 {
		d *= lognormal(c.rng, c.cfg.ExecJitter)
	}
	return d
}

// lognormal returns a multiplicative jitter factor with mean 1 and the
// given relative standard deviation.
func lognormal(rng *rand.Rand, sigma float64) float64 {
	// For a lognormal with parameters (mu, s), mean = exp(mu + s^2/2).
	// Choosing mu = -s^2/2 gives mean 1.
	s := sigma
	x := rng.NormFloat64()*s - s*s/2
	return math.Exp(x)
}

// StageFiles performs n metadata operations and one aggregate transfer of
// the given byte volume through the shared filesystem, blocking the
// calling process. It returns the elapsed virtual time.
func (c *Cluster) StageFiles(p *sim.Proc, nfiles int, bytes int64) float64 {
	if nfiles <= 0 && bytes <= 0 {
		return 0
	}
	start := p.Now()
	for i := 0; i < nfiles; i++ {
		c.mds.Acquire(p, 1)
		p.Sleep(c.cfg.FS.MetaLatency)
		c.mds.Release(1)
	}
	if bytes > 0 {
		p.Sleep(float64(bytes) / c.cfg.FS.Bandwidth)
	}
	c.filesStaged += nfiles
	c.bytesStaged += bytes
	return p.Now() - start
}

// TaskFails draws whether a task fails under the configured probability.
func (c *Cluster) TaskFails() bool {
	c.tasksLaunched++
	if c.cfg.FailureProb > 0 && c.rng.Float64() < c.cfg.FailureProb {
		c.tasksFailed++
		return true
	}
	return false
}

// Stats reports cumulative staging and failure counters.
func (c *Cluster) Stats() (filesStaged int, bytesStaged int64, launched, failed int) {
	return c.filesStaged, c.bytesStaged, c.tasksLaunched, c.tasksFailed
}

// CoreBusyIntegral returns machine-wide core-seconds consumed so far.
func (c *Cluster) CoreBusyIntegral() float64 { return c.cores.BusyIntegral() }
