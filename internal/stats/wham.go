package stats

import (
	"fmt"
	"math"
)

// UmbrellaWindow is the sampled data of one umbrella window: harmonic
// restraints on φ and ψ (E = K·wrap(x-c)², matching the MD engine's
// restraint convention) plus the torsion samples collected under them.
type UmbrellaWindow struct {
	PhiCenter, PsiCenter float64
	KPhi, KPsi           float64 // kcal/mol/rad²; 0 disables that axis
	Phi, Psi             []float64
}

// Samples returns the number of (φ, ψ) samples.
func (w UmbrellaWindow) Samples() int {
	if len(w.Phi) < len(w.Psi) {
		return len(w.Phi)
	}
	return len(w.Psi)
}

// biasAt evaluates the window's bias at a grid point.
func (w UmbrellaWindow) biasAt(phi, psi float64) float64 {
	e := 0.0
	if w.KPhi > 0 {
		d := wrapPi(phi - w.PhiCenter)
		e += w.KPhi * d * d
	}
	if w.KPsi > 0 {
		d := wrapPi(psi - w.PsiCenter)
		e += w.KPsi * d * d
	}
	return e
}

func wrapPi(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a <= -math.Pi {
		a += 2 * math.Pi
	} else if a > math.Pi {
		a -= 2 * math.Pi
	}
	return a
}

// WHAM2D computes the unbiased 2D free-energy surface from umbrella
// windows by the standard self-consistent WHAM iteration — the
// maximum-likelihood multistate estimator (our substitute for vFEP,
// which is likewise a maximum-likelihood FES method). The returned
// surface is min-shifted to zero.
func WHAM2D(windows []UmbrellaWindow, bins int, tK float64, maxIter int, tol float64) (*FES, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("stats: WHAM needs at least one window")
	}
	if tK <= 0 {
		return nil, fmt.Errorf("stats: non-positive temperature %g", tK)
	}
	if maxIter <= 0 {
		maxIter = 500
	}
	beta := 1 / (0.0019872041 * tK)
	nb := bins * bins

	// Per-window histograms and sample counts on the shared grid.
	nK := make([]float64, len(windows))
	hist := make([][]float64, len(windows))
	anySample := false
	for k, w := range windows {
		hist[k] = make([]float64, nb)
		h := NewHist2D(bins)
		m := w.Samples()
		for i := 0; i < m; i++ {
			h.Add(w.Phi[i], w.Psi[i], 1)
		}
		for i := 0; i < bins; i++ {
			for j := 0; j < bins; j++ {
				hist[k][i*bins+j] = h.Counts[i][j]
			}
		}
		nK[k] = float64(m)
		if m > 0 {
			anySample = true
		}
	}
	if !anySample {
		return nil, fmt.Errorf("stats: WHAM windows contain no samples")
	}

	// Precompute bias Boltzmann factors on the grid.
	expBias := make([][]float64, len(windows))
	ref := NewHist2D(bins)
	for k, w := range windows {
		expBias[k] = make([]float64, nb)
		for i := 0; i < bins; i++ {
			for j := 0; j < bins; j++ {
				expBias[k][i*bins+j] = math.Exp(-beta * w.biasAt(ref.BinCenter(i), ref.BinCenter(j)))
			}
		}
	}

	// Total counts per bin.
	num := make([]float64, nb)
	for k := range windows {
		for b := 0; b < nb; b++ {
			num[b] += hist[k][b]
		}
	}

	// Self-consistent iteration on the window free energies f_k
	// (stored as exp(+beta f_k) normalisation factors).
	fK := make([]float64, len(windows))
	prob := make([]float64, nb)
	for iter := 0; iter < maxIter; iter++ {
		for b := 0; b < nb; b++ {
			den := 0.0
			for k := range windows {
				den += nK[k] * math.Exp(beta*fK[k]) * expBias[k][b]
			}
			if den > 0 {
				prob[b] = num[b] / den
			} else {
				prob[b] = 0
			}
		}
		maxShift := 0.0
		for k := range windows {
			z := 0.0
			for b := 0; b < nb; b++ {
				z += prob[b] * expBias[k][b]
			}
			var newF float64
			if z > 0 {
				newF = -math.Log(z) / beta
			}
			if d := math.Abs(newF - fK[k]); d > maxShift {
				maxShift = d
			}
			fK[k] = newF
		}
		if maxShift < tol {
			break
		}
	}

	// Normalise and invert to free energies.
	total := 0.0
	for _, p := range prob {
		total += p
	}
	fes := &FES{Bins: bins, F: make([][]float64, bins)}
	minF := math.Inf(1)
	for i := 0; i < bins; i++ {
		fes.F[i] = make([]float64, bins)
		for j := 0; j < bins; j++ {
			p := prob[i*bins+j]
			if p <= 0 || total <= 0 {
				fes.F[i][j] = math.Inf(1)
				continue
			}
			fes.F[i][j] = -math.Log(p/total) / beta
			if fes.F[i][j] < minF {
				minF = fes.F[i][j]
			}
		}
	}
	if !math.IsInf(minF, 1) {
		for i := range fes.F {
			for j := range fes.F[i] {
				if !math.IsInf(fes.F[i][j], 1) {
					fes.F[i][j] -= minF
				}
			}
		}
	}
	return fes, nil
}
