package stats

import (
	"math"
	"testing"
)

func TestAnalyzeMixingErrors(t *testing.T) {
	if _, err := AnalyzeMixing(nil, 4); err == nil {
		t.Error("empty history accepted")
	}
	if _, err := AnalyzeMixing([][]int{{}}, 4); err == nil {
		t.Error("history without replicas accepted")
	}
	if _, err := AnalyzeMixing([][]int{{0, 1}, {0}}, 4); err == nil {
		t.Error("ragged history accepted")
	}
	if _, err := AnalyzeMixing([][]int{{0, 9}}, 4); err == nil {
		t.Error("out-of-range slot accepted")
	}
}

func TestAnalyzeMixingFrozenLadder(t *testing.T) {
	// Replicas never move: no round trips, zero displacement, each
	// replica visits exactly one slot.
	history := [][]int{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}}
	s, err := AnalyzeMixing(history, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.RoundTrips != 0 {
		t.Errorf("round trips %d, want 0", s.RoundTrips)
	}
	if s.MeanDisplacement != 0 {
		t.Errorf("displacement %v, want 0", s.MeanDisplacement)
	}
	if math.Abs(s.VisitedFraction-1.0/3) > 1e-12 {
		t.Errorf("visited fraction %v, want 1/3", s.VisitedFraction)
	}
}

func TestAnalyzeMixingFullTraversal(t *testing.T) {
	// One replica walks 0 -> 3 -> 0: exactly one round trip, full
	// ladder coverage.
	history := [][]int{{0}, {1}, {2}, {3}, {2}, {1}, {0}}
	s, err := AnalyzeMixing(history, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.RoundTrips != 1 {
		t.Errorf("round trips %d, want 1", s.RoundTrips)
	}
	if s.VisitedFraction != 1 {
		t.Errorf("visited fraction %v, want 1", s.VisitedFraction)
	}
	if math.Abs(s.MeanDisplacement-1) > 1e-12 {
		t.Errorf("mean displacement %v, want 1", s.MeanDisplacement)
	}
}

func TestAnalyzeMixingTwoRoundTrips(t *testing.T) {
	history := [][]int{{0}, {2}, {0}, {2}, {0}}
	s, err := AnalyzeMixing(history, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.RoundTrips != 2 {
		t.Errorf("round trips %d, want 2", s.RoundTrips)
	}
}

func TestAnalyzeMixingHalfTripDoesNotCount(t *testing.T) {
	history := [][]int{{0}, {1}, {2}} // bottom to top only
	s, err := AnalyzeMixing(history, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.RoundTrips != 0 {
		t.Errorf("round trips %d for a half traversal, want 0", s.RoundTrips)
	}
}

func TestAnalyzeMixingSingleReplica(t *testing.T) {
	// One replica sweeping the whole ladder and back: one round trip,
	// full coverage, unit displacement every sub-cycle.
	history := [][]int{{0}, {1}, {2}, {1}, {0}}
	s, err := AnalyzeMixing(history, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.RoundTrips != 1 {
		t.Errorf("round trips %d, want 1", s.RoundTrips)
	}
	if s.VisitedFraction != 1 {
		t.Errorf("visited fraction %v, want 1", s.VisitedFraction)
	}
	if s.MeanDisplacement != 1 {
		t.Errorf("displacement %v, want 1", s.MeanDisplacement)
	}
}

func TestAnalyzeMixingSingleSlot(t *testing.T) {
	// A one-slot ladder is degenerate: bottom and top coincide, so no
	// round trip is ever completed, every replica trivially visits
	// everything, and nothing can move.
	history := [][]int{{0, 0}, {0, 0}, {0, 0}}
	s, err := AnalyzeMixing(history, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.RoundTrips != 0 {
		t.Errorf("round trips %d, want 0 (endpoints coincide)", s.RoundTrips)
	}
	if s.VisitedFraction != 1 {
		t.Errorf("visited fraction %v, want 1", s.VisitedFraction)
	}
	if s.MeanDisplacement != 0 {
		t.Errorf("displacement %v, want 0", s.MeanDisplacement)
	}
}

func TestAnalyzeMixingSingleRow(t *testing.T) {
	// A single sub-cycle has no transitions: displacement must be 0 by
	// construction, not NaN from a zero division.
	s, err := AnalyzeMixing([][]int{{0, 2, 1}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanDisplacement != 0 {
		t.Errorf("displacement %v, want 0 with no transitions", s.MeanDisplacement)
	}
	if math.Abs(s.VisitedFraction-1.0/3) > 1e-12 {
		t.Errorf("visited fraction %v, want 1/3", s.VisitedFraction)
	}
}
