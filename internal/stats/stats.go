// Package stats provides the analysis substrate of the reproduction:
// periodic histograms, WHAM-based free-energy surfaces (substituting for
// the paper's vFEP maximum-likelihood estimator), and summary
// statistics. It regenerates the paper's Figure 4 from real umbrella
// trajectories.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation (0 for fewer than 2 points).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) by linear
// interpolation on the sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	pos := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// CircularMean returns the circular mean of angles in radians.
func CircularMean(angles []float64) float64 {
	var sx, sy float64
	for _, a := range angles {
		sx += math.Cos(a)
		sy += math.Sin(a)
	}
	return math.Atan2(sy, sx)
}

// Hist2D is a 2D histogram over the periodic torus (-π, π]².
type Hist2D struct {
	Bins   int
	Counts [][]float64
	total  float64
}

// NewHist2D allocates a bins×bins periodic histogram.
func NewHist2D(bins int) *Hist2D {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: non-positive bin count %d", bins))
	}
	c := make([][]float64, bins)
	for i := range c {
		c[i] = make([]float64, bins)
	}
	return &Hist2D{Bins: bins, Counts: c}
}

// binOf maps an angle to a bin index.
func (h *Hist2D) binOf(a float64) int {
	// Map (-π, π] to [0, bins).
	f := (a + math.Pi) / (2 * math.Pi)
	i := int(f * float64(h.Bins))
	if i < 0 {
		i = 0
	}
	if i >= h.Bins {
		i = h.Bins - 1
	}
	return i
}

// Add accumulates a sample with the given weight.
func (h *Hist2D) Add(x, y, w float64) {
	h.Counts[h.binOf(x)][h.binOf(y)] += w
	h.total += w
}

// Total returns the accumulated weight.
func (h *Hist2D) Total() float64 { return h.total }

// BinCenter returns the angle at the centre of bin i.
func (h *Hist2D) BinCenter(i int) float64 {
	return -math.Pi + (float64(i)+0.5)*2*math.Pi/float64(h.Bins)
}

// FES is a free-energy surface on a periodic 2D grid, in kcal/mol,
// shifted so the minimum is zero. Empty bins hold +Inf.
type FES struct {
	Bins int
	F    [][]float64
}

// FromHist converts a probability histogram to a free-energy surface by
// Boltzmann inversion at temperature tK: F = -kT ln p, min-shifted.
func FromHist(h *Hist2D, tK float64) *FES {
	kT := 0.0019872041 * tK
	f := make([][]float64, h.Bins)
	minF := math.Inf(1)
	for i := range f {
		f[i] = make([]float64, h.Bins)
		for j := range f[i] {
			c := h.Counts[i][j]
			if c <= 0 || h.total <= 0 {
				f[i][j] = math.Inf(1)
				continue
			}
			f[i][j] = -kT * math.Log(c/h.total)
			if f[i][j] < minF {
				minF = f[i][j]
			}
		}
	}
	if !math.IsInf(minF, 1) {
		for i := range f {
			for j := range f[i] {
				if !math.IsInf(f[i][j], 1) {
					f[i][j] -= minF
				}
			}
		}
	}
	return &FES{Bins: h.Bins, F: f}
}

// Min returns the minimum free energy (0 after shifting) and its bin.
func (s *FES) Min() (f float64, i, j int) {
	f = math.Inf(1)
	for a := range s.F {
		for b := range s.F[a] {
			if s.F[a][b] < f {
				f, i, j = s.F[a][b], a, b
			}
		}
	}
	return f, i, j
}

// MaxFinite returns the largest finite free energy.
func (s *FES) MaxFinite() float64 {
	m := 0.0
	for a := range s.F {
		for b := range s.F[a] {
			if !math.IsInf(s.F[a][b], 1) && s.F[a][b] > m {
				m = s.F[a][b]
			}
		}
	}
	return m
}

// CoveredFraction returns the fraction of bins with finite free energy
// (sampled at least once).
func (s *FES) CoveredFraction() float64 {
	n, cov := 0, 0
	for a := range s.F {
		for b := range s.F[a] {
			n++
			if !math.IsInf(s.F[a][b], 1) {
				cov++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return float64(cov) / float64(n)
}

// BasinCount returns the number of local minima below the given free
// energy threshold, using 8-neighbour comparison on the periodic grid.
// It quantifies the multi-basin structure of a Ramachandran-like map.
func (s *FES) BasinCount(threshold float64) int {
	n := 0
	b := s.Bins
	at := func(i, j int) float64 {
		return s.F[((i%b)+b)%b][((j%b)+b)%b]
	}
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			v := s.F[i][j]
			if math.IsInf(v, 1) || v > threshold {
				continue
			}
			isMin := true
			for di := -1; di <= 1 && isMin; di++ {
				for dj := -1; dj <= 1; dj++ {
					if di == 0 && dj == 0 {
						continue
					}
					if at(i+di, j+dj) < v {
						isMin = false
						break
					}
				}
			}
			if isMin {
				n++
			}
		}
	}
	return n
}

// Render draws the surface as an ASCII contour map (coarse, for CLI
// output), with rows spanning ψ top-to-bottom and columns φ.
func (s *FES) Render(levels string) string {
	if levels == "" {
		levels = " .:-=+*#%@"
	}
	maxF := s.MaxFinite()
	if maxF <= 0 {
		maxF = 1
	}
	out := make([]byte, 0, (s.Bins+1)*s.Bins)
	for j := s.Bins - 1; j >= 0; j-- {
		for i := 0; i < s.Bins; i++ {
			v := s.F[i][j]
			if math.IsInf(v, 1) {
				out = append(out, '?')
				continue
			}
			idx := int(v / maxF * float64(len(levels)-1))
			if idx >= len(levels) {
				idx = len(levels) - 1
			}
			out = append(out, levels[idx])
		}
		out = append(out, '\n')
	}
	return string(out)
}
