package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if s := Std(xs); math.Abs(s-2.138) > 0.01 {
		t.Fatalf("Std = %v, want ~2.138", s)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{1}) != 0 {
		t.Fatal("empty/degenerate inputs must give 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("median %v, want 3", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 %v, want 1", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("p100 %v, want 5", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Fatalf("p25 %v, want 2", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile != 0")
	}
}

func TestCircularMean(t *testing.T) {
	// Angles straddling the wrap: -170° and +170° average to ±180°.
	m := CircularMean([]float64{math.Pi - 0.1, -math.Pi + 0.1})
	if math.Abs(math.Abs(m)-math.Pi) > 1e-9 {
		t.Fatalf("circular mean %v, want ±pi", m)
	}
}

func TestHist2DBinning(t *testing.T) {
	h := NewHist2D(4)
	h.Add(-math.Pi+0.01, -math.Pi+0.01, 1) // first bin
	h.Add(math.Pi-0.01, math.Pi-0.01, 2)   // last bin
	if h.Counts[0][0] != 1 {
		t.Fatalf("first bin count %v", h.Counts[0][0])
	}
	if h.Counts[3][3] != 2 {
		t.Fatalf("last bin count %v", h.Counts[3][3])
	}
	if h.Total() != 3 {
		t.Fatalf("total %v, want 3", h.Total())
	}
}

func TestHist2DBinCenters(t *testing.T) {
	h := NewHist2D(8)
	for i := 0; i < 8; i++ {
		c := h.BinCenter(i)
		if h.binOf(c) != i {
			t.Fatalf("bin center %v maps to bin %d, want %d", c, h.binOf(c), i)
		}
	}
}

// Property: binOf always lands in range for any angle.
func TestPropertyBinRange(t *testing.T) {
	h := NewHist2D(13)
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		b := h.binOf(math.Mod(a, math.Pi))
		return b >= 0 && b < 13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFromHistBoltzmannInversion(t *testing.T) {
	// Two bins populated 10:1 at 300K: ΔF = kT ln 10.
	h := NewHist2D(2)
	h.Add(-1, -1, 10)
	h.Add(1, 1, 1)
	f := FromHist(h, 300)
	kT := 0.0019872041 * 300
	min, i, j := f.Min()
	if min != 0 {
		t.Fatalf("min %v, want 0 after shift", min)
	}
	if i != 0 || j != 0 {
		t.Fatalf("min at (%d,%d), want (0,0)", i, j)
	}
	want := kT * math.Log(10)
	if math.Abs(f.F[1][1]-want) > 1e-9 {
		t.Fatalf("ΔF = %v, want %v", f.F[1][1], want)
	}
	// Empty bins are +Inf.
	if !math.IsInf(f.F[0][1], 1) {
		t.Fatal("empty bin not +Inf")
	}
}

func TestFESCoverageAndRender(t *testing.T) {
	h := NewHist2D(4)
	h.Add(0, 0, 5)
	f := FromHist(h, 300)
	if c := f.CoveredFraction(); math.Abs(c-1.0/16) > 1e-9 {
		t.Fatalf("coverage %v, want 1/16", c)
	}
	img := f.Render("")
	if !strings.Contains(img, "?") {
		t.Fatal("render lacks empty-bin markers")
	}
	if len(strings.Split(strings.TrimSpace(img), "\n")) != 4 {
		t.Fatal("render row count wrong")
	}
}

func TestBasinCount(t *testing.T) {
	// Construct a surface with exactly two basins.
	f := &FES{Bins: 8, F: make([][]float64, 8)}
	for i := range f.F {
		f.F[i] = make([]float64, 8)
		for j := range f.F[i] {
			f.F[i][j] = 10
		}
	}
	f.F[1][1] = 0
	f.F[5][5] = 0.5
	if n := f.BasinCount(5); n != 2 {
		t.Fatalf("basins = %d, want 2", n)
	}
	if n := f.BasinCount(0.1); n != 1 {
		t.Fatalf("basins below 0.1 = %d, want 1", n)
	}
}

// mcSample draws Metropolis samples of (phi, psi) from U0 + window bias.
func mcSample(u0 func(phi, psi float64) float64, w UmbrellaWindow, tK float64, n int, rng *rand.Rand) ([]float64, []float64) {
	beta := 1 / (0.0019872041 * tK)
	phi, psi := w.PhiCenter, w.PsiCenter
	e := u0(phi, psi) + w.biasAt(phi, psi)
	var phis, psis []float64
	for i := 0; i < n*10; i++ {
		np := wrapPi(phi + (rng.Float64() - 0.5))
		nq := wrapPi(psi + (rng.Float64() - 0.5))
		ne := u0(np, nq) + w.biasAt(np, nq)
		if ne <= e || rng.Float64() < math.Exp(-beta*(ne-e)) {
			phi, psi, e = np, nq, ne
		}
		if i%10 == 9 {
			phis = append(phis, phi)
			psis = append(psis, psi)
		}
	}
	return phis, psis
}

func TestWHAMRecoversKnownSurface(t *testing.T) {
	// Reference potential with a single cosine well per axis.
	u0 := func(phi, psi float64) float64 {
		return 1.5*(1-math.Cos(phi)) + 1.0*(1-math.Cos(psi-1))
	}
	const tK = 300
	rng := rand.New(rand.NewSource(12))
	var windows []UmbrellaWindow
	const nw = 6
	for i := 0; i < nw; i++ {
		for j := 0; j < nw; j++ {
			w := UmbrellaWindow{
				PhiCenter: -math.Pi + 2*math.Pi*float64(i)/nw,
				PsiCenter: -math.Pi + 2*math.Pi*float64(j)/nw,
				KPhi:      2.0,
				KPsi:      2.0,
			}
			w.Phi, w.Psi = mcSample(u0, w, tK, 400, rng)
			windows = append(windows, w)
		}
	}
	fes, err := WHAM2D(windows, 24, tK, 2000, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if fes.CoveredFraction() < 0.95 {
		t.Fatalf("coverage %v too low", fes.CoveredFraction())
	}
	// The recovered minimum must sit near (0, 1): the u0 minimum.
	_, i, j := fes.Min()
	h := NewHist2D(24)
	phiMin, psiMin := h.BinCenter(i), h.BinCenter(j)
	if math.Abs(wrapPi(phiMin-0)) > 0.6 || math.Abs(wrapPi(psiMin-1)) > 0.6 {
		t.Fatalf("FES minimum at (%.2f, %.2f), want near (0, 1)", phiMin, psiMin)
	}
	// Check relative free energies against u0 on well-sampled bins.
	var diffs []float64
	for a := 0; a < 24; a++ {
		for b := 0; b < 24; b++ {
			if math.IsInf(fes.F[a][b], 1) || fes.F[a][b] > 3 {
				continue
			}
			ref := u0(h.BinCenter(a), h.BinCenter(b)) - u0(phiMin, psiMin)
			diffs = append(diffs, fes.F[a][b]-ref)
		}
	}
	if len(diffs) < 20 {
		t.Fatalf("too few well-sampled bins: %d", len(diffs))
	}
	if s := Std(diffs); s > 0.5 {
		t.Fatalf("FES deviates from reference: std %v kcal/mol", s)
	}
}

func TestWHAMErrors(t *testing.T) {
	if _, err := WHAM2D(nil, 10, 300, 10, 1e-6); err == nil {
		t.Error("empty windows accepted")
	}
	if _, err := WHAM2D([]UmbrellaWindow{{}}, 10, -3, 10, 1e-6); err == nil {
		t.Error("negative temperature accepted")
	}
	if _, err := WHAM2D([]UmbrellaWindow{{}}, 10, 300, 10, 1e-6); err == nil {
		t.Error("windows without samples accepted")
	}
}

func TestWHAMSingleUnbiasedWindowMatchesInversion(t *testing.T) {
	// With one unbiased window, WHAM must reduce to Boltzmann inversion.
	rng := rand.New(rand.NewSource(3))
	w := UmbrellaWindow{} // no bias
	u0 := func(phi, psi float64) float64 { return 2 * (1 - math.Cos(phi)) }
	w.Phi, w.Psi = mcSample(u0, w, 300, 2000, rng)
	fes, err := WHAM2D([]UmbrellaWindow{w}, 12, 300, 500, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHist2D(12)
	for i := range w.Phi {
		h.Add(w.Phi[i], w.Psi[i], 1)
	}
	direct := FromHist(h, 300)
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			a, b := fes.F[i][j], direct.F[i][j]
			if math.IsInf(a, 1) != math.IsInf(b, 1) {
				t.Fatalf("coverage mismatch at (%d,%d)", i, j)
			}
			if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-6 {
				t.Fatalf("bin (%d,%d): WHAM %v vs inversion %v", i, j, a, b)
			}
		}
	}
}
