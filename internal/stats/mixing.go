package stats

import "fmt"

// Replica-exchange mixing diagnostics. REMD sampling quality depends on
// replicas performing round trips through the parameter ladder; these
// functions analyse the slot history recorded by the orchestrator
// (row = sub-cycle, column = replica, value = slot index).

// MixingStats summarises how well replicas traverse the ladder.
type MixingStats struct {
	// RoundTrips is the total number of completed bottom-to-top-to-
	// bottom (or top-to-bottom-to-top) traversals across all replicas.
	RoundTrips int
	// VisitedFraction is the mean over replicas of the fraction of
	// distinct slots each visited.
	VisitedFraction float64
	// MeanDisplacement is the mean absolute slot change per sub-cycle
	// per replica (0 = frozen ladder, ~0.5 = healthy neighbour mixing).
	MeanDisplacement float64
}

// AnalyzeMixing computes mixing statistics from a slot history with
// nSlots ladder positions. It returns an error for malformed input.
//
// When the orchestrator ran with a bounded history (Spec.HistoryTail),
// the rows passed here cover only the retained tail of the run: the
// statistics then describe that window, not the whole trajectory, and
// round trips straddling the truncation point are not counted.
func AnalyzeMixing(history [][]int, nSlots int) (MixingStats, error) {
	var s MixingStats
	if len(history) == 0 {
		return s, fmt.Errorf("stats: empty slot history")
	}
	nRep := len(history[0])
	if nRep == 0 {
		return s, fmt.Errorf("stats: slot history has no replicas")
	}
	for i, row := range history {
		if len(row) != nRep {
			return s, fmt.Errorf("stats: history row %d has %d entries, want %d", i, len(row), nRep)
		}
		for _, slot := range row {
			if slot < 0 || slot >= nSlots {
				return s, fmt.Errorf("stats: slot %d out of range [0,%d)", slot, nSlots)
			}
		}
	}

	totalVisited := 0
	totalDisp := 0.0
	dispSamples := 0
	visited := make([]bool, nSlots)
	for r := 0; r < nRep; r++ {
		for i := range visited {
			visited[i] = false
		}
		nVisited := 0
		// Round-trip state machine: -1 = waiting for an endpoint,
		// 0 = last endpoint was bottom, 1 = last endpoint was top.
		last := -1
		for t := range history {
			slot := history[t][r]
			if !visited[slot] {
				visited[slot] = true
				nVisited++
			}
			if t > 0 {
				d := slot - history[t-1][r]
				if d < 0 {
					d = -d
				}
				totalDisp += float64(d)
				dispSamples++
			}
			switch {
			case slot == 0:
				if last == 1 {
					s.RoundTrips++ // completed a half cycle top->bottom
				}
				last = 0
			case slot == nSlots-1:
				if last == 0 {
					s.RoundTrips++ // bottom->top half
				}
				last = 1
			}
		}
		totalVisited += nVisited
	}
	// Two endpoint-to-endpoint halves make one round trip.
	s.RoundTrips /= 2
	s.VisitedFraction = float64(totalVisited) / float64(nRep*nSlots)
	if dispSamples > 0 {
		s.MeanDisplacement = totalDisp / float64(dispSamples)
	}
	return s, nil
}
