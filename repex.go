// Package repex is the public API of the RepEx reproduction: a flexible
// framework for scalable replica-exchange molecular dynamics simulations
// (Treikalis et al., ICPP 2016), implemented in pure Go together with
// every substrate the paper depends on — an MD engine, engine adapters
// for Amber- and NAMD-style codes, a pilot-job runtime and a
// discrete-event HPC cluster model.
//
// The three concepts of the paper's design surface directly:
//
//   - Replica Exchange Patterns: PatternSynchronous and
//     PatternAsynchronous (Spec.Pattern), both expressed as pluggable
//     exchange-trigger policies (Trigger, Spec.Trigger) alongside
//     CountTrigger, AdaptiveTrigger and the closed-loop
//     FeedbackTrigger;
//   - the pilot-job system: NewVirtualRuntime allocates a pilot on a
//     simulated machine and runs workloads in virtual time;
//   - flexible Execution Modes: Mode I/II are derived automatically from
//     the ratio of pilot cores to replicas.
//
// Quick start (real MD, local execution):
//
//	spec := &repex.Spec{
//	    Name:            "t-remd",
//	    Dims:            []repex.Dimension{{Type: repex.Temperature,
//	                     Values: repex.GeometricTemperatures(280, 360, 8)}},
//	    CoresPerReplica: 1, StepsPerCycle: 500, Cycles: 4,
//	}
//	report, err := repex.RunLocal(spec, runtime.NumCPU(), 42)
//
// See examples/ for complete programs and internal/bench for the
// harnesses regenerating every table and figure of the paper.
package repex

import (
	"fmt"
	"runtime"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engines"
	"repro/internal/exchange"
	"repro/internal/localexec"
	"repro/internal/md"
	"repro/internal/pilot"
	"repro/internal/sim"
)

// Version identifies this reproduction release.
const Version = "1.0.0"

// Core REMD types.
type (
	// Spec fully describes an REMD simulation.
	Spec = core.Spec
	// Dimension is one exchange dimension (type + window values).
	Dimension = core.Dimension
	// Replica is one replica of the simulated system.
	Replica = core.Replica
	// Report is the outcome of a run (cycle records, Eq. 1
	// decomposition, utilization).
	Report = core.Report
	// Engine is the MD-engine adapter interface (the AMM layer).
	Engine = core.Engine
	// Pattern selects the Replica Exchange Pattern.
	Pattern = core.Pattern
	// Mode is the Execution Mode (I or II), derived from resources.
	Mode = core.Mode
)

// Exchange dimension types.
const (
	// Temperature is T-REMD exchange.
	Temperature = exchange.Temperature
	// Umbrella is U-REMD (Hamiltonian) exchange.
	Umbrella = exchange.Umbrella
	// Salt is S-REMD (salt concentration) exchange.
	Salt = exchange.Salt
)

// Replica Exchange Patterns: aliases for the two canonical
// exchange-trigger policies (barrier and real-time window). Further
// criteria are selected directly via Spec.Trigger.
const (
	PatternSynchronous  = core.PatternSynchronous
	PatternAsynchronous = core.PatternAsynchronous
)

// Exchange-trigger policies: the criterion deciding when replicas
// transition from the MD phase to the exchange phase. All policies run
// on the same event-driven dispatcher; Spec.Trigger overrides the
// Pattern-derived default.
type (
	// Trigger is the pluggable exchange-trigger policy interface.
	Trigger = core.Trigger
	// BarrierTrigger waits for every alive replica (synchronous RE).
	BarrierTrigger = core.BarrierTrigger
	// WindowTrigger fires at fixed real-time boundaries (asynchronous RE).
	WindowTrigger = core.WindowTrigger
	// CountTrigger fires as soon as N replicas are ready.
	CountTrigger = core.CountTrigger
	// AdaptiveTrigger is a window that tracks MD-time dispersion.
	AdaptiveTrigger = core.AdaptiveTrigger
	// FeedbackTrigger runs one PI controller per exchange dimension,
	// steering a (window, MinReady) actuator pair to hold each
	// dimension's target neighbour-pair acceptance ratio, with a
	// saturation diagnostic when a ladder cannot reach its set point.
	FeedbackTrigger = core.FeedbackTrigger
	// FeedbackDimStatus is one dimension's controller state as exposed
	// by FeedbackTrigger.ControllerStatus (and the /status endpoint).
	FeedbackDimStatus = core.FeedbackDimStatus
)

// NewBarrierTrigger returns the synchronous-pattern policy.
func NewBarrierTrigger() *BarrierTrigger { return core.NewBarrierTrigger() }

// NewWindowTrigger returns the asynchronous-pattern policy: a fixed
// real-time window, optionally firing early once minReady replicas are
// ready.
func NewWindowTrigger(window float64, minReady int) *WindowTrigger {
	return core.NewWindowTrigger(window, minReady)
}

// NewCountTrigger returns a policy that exchanges as soon as count
// replicas are ready, with no real-time window.
func NewCountTrigger(count int) *CountTrigger { return core.NewCountTrigger(count) }

// NewAdaptiveTrigger returns a window policy whose period adapts to the
// observed MD-time dispersion, starting from the given initial window.
func NewAdaptiveTrigger(initial float64) *AdaptiveTrigger {
	return core.NewAdaptiveTrigger(initial)
}

// NewFeedbackTrigger returns a closed-loop policy that widens/narrows
// its window to hold a target acceptance ratio, starting from the given
// initial window; see core.FeedbackTrigger for the knobs.
func NewFeedbackTrigger(initial float64) *FeedbackTrigger {
	return core.NewFeedbackTrigger(initial)
}

// Fault policies.
const (
	FaultDrop     = core.FaultDrop
	FaultRelaunch = core.FaultRelaunch
)

// Online ladder respacing: Spec.Respace arms the actuator behind the
// feedback trigger's saturation diagnostic — a persistently saturated
// dimension has its window values re-fitted from the measured per-pair
// acceptance profile (internal/respace supplies the collector-backed
// planner) and the run continues on the new grid.
type (
	// RespaceSpec configures online ladder respacing on a Spec.
	RespaceSpec = core.RespaceSpec
	// RespacePlanner proposes re-fitted ladders for saturated dimensions.
	RespacePlanner = core.RespacePlanner
	// RespaceRecord is one applied refit, as reported by
	// Simulation.RespaceHistory and carried through snapshots.
	RespaceRecord = core.RespaceRecord
	// RespaceEvent is the bus event published when a refit is applied.
	RespaceEvent = core.RespaceEvent
)

// Checkpoint/restart: a Snapshot captures a run after an exchange event
// (Spec.SnapshotEvery / Spec.OnSnapshot) and Spec.Resume restores it, so
// runs longer than one pilot walltime chain across allocations.
type (
	// Snapshot is a serializable checkpoint of a running simulation.
	Snapshot = core.Snapshot
	// ReplicaState is the per-replica state stored in a Snapshot.
	ReplicaState = core.ReplicaState
)

// DecodeSnapshot parses a snapshot produced by Snapshot.Encode.
func DecodeSnapshot(data []byte) (*Snapshot, error) { return core.DecodeSnapshot(data) }

// Observability: Spec.Bus receives typed MDEvent/ExchangeEvent/
// FaultEvent records as a run progresses. Publication is non-blocking
// (bounded per-subscriber rings), so consumers — internal/analysis's
// online Collector, internal/serve's HTTP status server, or custom
// code — can never stall the dispatcher.
type (
	// Bus is the typed event bus the dispatcher publishes on.
	Bus = core.Bus
	// Subscription is one consumer's bounded view of the bus.
	Subscription = core.Subscription
	// MDEvent records one finally-processed MD segment.
	MDEvent = core.MDEvent
	// ExchangeEvent records one exchange event's pair outcomes and the
	// post-event slot assignment.
	ExchangeEvent = core.ExchangeEvent
	// FaultEvent records one fault-handling action.
	FaultEvent = core.FaultEvent
	// PairOutcome is one attempted neighbour exchange.
	PairOutcome = core.PairOutcome
)

// NewBus returns an empty event bus for Spec.Bus.
func NewBus() *Bus { return core.NewBus() }

// GeometricTemperatures builds the standard T-REMD ladder.
func GeometricTemperatures(lo, hi float64, n int) []float64 {
	return core.GeometricTemperatures(lo, hi, n)
}

// UniformWindows builds n umbrella windows uniformly over [0°, 360°).
func UniformWindows(n int) []float64 { return core.UniformWindows(n) }

// UmbrellaK002 is the paper's umbrella force constant (0.02
// kcal/mol/deg²) in internal units.
var UmbrellaK002 = core.UmbrellaK002

// Machine presets for the virtual cluster.
var (
	Stampede = cluster.Stampede
	SuperMIC = cluster.SuperMIC
	Small    = cluster.Small
)

// RunLocal executes the spec with the real Go MD engine (alanine
// dipeptide model) on local goroutines bounded by workers cores. This is
// the validation path: trajectories are real and free-energy analysis is
// meaningful.
func RunLocal(spec *Spec, workers int, seed int64) (*Report, error) {
	eng, err := NewDipeptideEngine("amber", seed)
	if err != nil {
		return nil, err
	}
	return RunLocalWith(spec, eng, workers)
}

// RunLocalWith executes the spec with a caller-supplied engine on local
// goroutines.
func RunLocalWith(spec *Spec, eng Engine, workers int) (*Report, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rt := localexec.New(workers)
	simu, err := core.New(spec, eng, rt)
	if err != nil {
		return nil, err
	}
	return simu.Run()
}

// NewDipeptideEngine builds a real-execution engine adapter around the
// built-in alanine dipeptide model. Flavor is "amber" or "namd" and
// selects the input-file dialect generated and parsed per cycle.
func NewDipeptideEngine(flavor string, seed int64) (*engines.Real, error) {
	top, st := md.BuildAlanineDipeptide()
	sys, err := md.NewSystem(top, md.Box{}, 0)
	if err != nil {
		return nil, err
	}
	md.Minimize(sys, st, md.Params{TemperatureK: 300}, 2000, 1e-3)
	return engines.NewReal(flavor, sys, st, seed)
}

// VirtualEngineKind selects a cost-model adapter for virtual runs.
type VirtualEngineKind string

// Virtual engine kinds.
const (
	AmberSander VirtualEngineKind = "amber"       // serial sander
	AmberPmemd  VirtualEngineKind = "amber-pmemd" // parallel pmemd.MPI
	NAMD        VirtualEngineKind = "namd"        // NAMD 2.10
)

// RunVirtual executes the spec in virtual time: a pilot of pilotCores is
// provisioned on a simulated machine and the workload runs under
// calibrated cost models. Weeks of supercomputer time complete in
// milliseconds while preserving queueing, batching (Execution Mode II),
// overhead and failure behaviour.
func RunVirtual(spec *Spec, machine cluster.Config, pilotCores int, kind VirtualEngineKind, atoms int, seed int64) (*Report, error) {
	var newEng func(int64) core.Engine
	switch kind {
	case AmberSander:
		newEng = func(s int64) core.Engine { return engines.NewAmberVirtual(atoms, s) }
	case AmberPmemd:
		newEng = func(s int64) core.Engine { return engines.NewPmemdVirtual(atoms, s) }
	case NAMD:
		newEng = func(s int64) core.Engine { return engines.NewNAMDVirtual(atoms, s) }
	default:
		return nil, fmt.Errorf("repex: unknown virtual engine kind %q", kind)
	}
	env := sim.NewEnv()
	cl, err := cluster.New(env, machine, seed+1)
	if err != nil {
		return nil, err
	}
	eng := newEng(seed + 2)
	var report *core.Report
	var runErr error
	env.Go("emm", func(p *sim.Proc) {
		// Unbounded walltime here; bounded pilots with failover are
		// exposed through internal/bench.RunParams.PilotWalltime and the
		// cmd/repex resource file.
		rt, err := pilot.NewFailoverRuntime(cl, pilot.Description{Cores: pilotCores}, p)
		if err != nil {
			runErr = err
			return
		}
		simu, err := core.New(spec, eng, rt)
		if err != nil {
			runErr = err
			return
		}
		report, runErr = simu.Run()
	})
	env.Run()
	if runErr != nil {
		return nil, runErr
	}
	return report, nil
}
