package repex

import (
	"testing"
)

func TestRunLocalTREMD(t *testing.T) {
	spec := &Spec{
		Name:            "api-t-remd",
		Dims:            []Dimension{{Type: Temperature, Values: GeometricTemperatures(280, 340, 4)}},
		Pattern:         PatternSynchronous,
		CoresPerReplica: 1,
		StepsPerCycle:   40,
		Cycles:          2,
		Seed:            5,
	}
	rep, err := RunLocal(spec, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replicas != 4 || rep.Engine != "amber-real" {
		t.Fatalf("report %d replicas engine %q", rep.Replicas, rep.Engine)
	}
	if len(rep.Records) != 2 {
		t.Fatalf("records %d, want 2", len(rep.Records))
	}
}

func TestRunLocalWithNAMDFlavor(t *testing.T) {
	eng, err := NewDipeptideEngine("namd", 3)
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{
		Name:            "api-namd",
		Dims:            []Dimension{{Type: Temperature, Values: []float64{290, 310}}},
		CoresPerReplica: 1,
		StepsPerCycle:   30,
		Cycles:          1,
	}
	rep, err := RunLocalWith(spec, eng, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != "namd-real" {
		t.Fatalf("engine %q", rep.Engine)
	}
}

func TestNewDipeptideEngineBadFlavor(t *testing.T) {
	if _, err := NewDipeptideEngine("gromacs", 1); err == nil {
		t.Fatal("unknown flavor accepted")
	}
}

func TestRunVirtualTSU(t *testing.T) {
	spec := &Spec{
		Name: "api-tsu",
		Dims: []Dimension{
			{Type: Temperature, Values: GeometricTemperatures(273, 373, 3)},
			{Type: Salt, Values: []float64{0.1, 0.3, 0.9}},
			{Type: Umbrella, Values: UniformWindows(3), Torsion: "phi", K: UmbrellaK002},
		},
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          2,
		Seed:            9,
	}
	rep, err := RunVirtual(spec, SuperMIC(), 27, AmberSander, 2881, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DimCode != "TSU" || rep.Mode.String() != "I" {
		t.Fatalf("report %s mode %v", rep.DimCode, rep.Mode)
	}
	if rep.Makespan() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestRunVirtualModeII(t *testing.T) {
	spec := &Spec{
		Name:            "api-mode2",
		Dims:            []Dimension{{Type: Temperature, Values: GeometricTemperatures(273, 373, 16)}},
		CoresPerReplica: 1,
		StepsPerCycle:   6000,
		Cycles:          1,
		Seed:            2,
	}
	rep, err := RunVirtual(spec, Small(2, 4), 8, AmberSander, 2881, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode.String() != "II" {
		t.Fatalf("8 cores / 16 replicas: mode %v, want II", rep.Mode)
	}
}

func TestRunVirtualUnknownEngine(t *testing.T) {
	spec := &Spec{
		Name:            "bad",
		Dims:            []Dimension{{Type: Temperature, Values: []float64{300, 310}}},
		CoresPerReplica: 1,
		StepsPerCycle:   100,
		Cycles:          1,
	}
	if _, err := RunVirtual(spec, SuperMIC(), 2, "gromacs", 100, 1); err == nil {
		t.Fatal("unknown engine kind accepted")
	}
}

func TestVersion(t *testing.T) {
	if Version == "" {
		t.Fatal("empty version")
	}
}
