#!/usr/bin/env bash
# Deterministic chaos soak: the committed chaos plan — a node loss
# mid-cycle, a spot-style preemption with a 30 s notice, an elastic
# shrink — must complete with zero dropped replicas, reproduce the
# committed golden slot fingerprint bit-for-bit (including across a
# checkpoint/resume boundary), and surface the faults on /metrics.
set -euo pipefail
# shellcheck source=scripts/ci/lib.sh
. "$(dirname "$0")/lib.sh"
cd "$(repo_root)"

# Determinism, resume and golden-fingerprint gates, under the race
# detector (configs/chaos_small.golden pins the slot history).
go test -race -run 'TestChaos' -v ./internal/bench/

# The same plan end to end through cmd/repex, scraping the fault
# telemetry off the live metrics endpoint.
go build -o /tmp/repex ./cmd/repex
/tmp/repex -sim configs/chaos_sim_small.json \
           -res configs/chaos_small.json \
           -listen 127.0.0.1:9195 > /tmp/chaos.log 2>&1 &
pid=$!
wait_http http://127.0.0.1:9195/status
wait_state http://127.0.0.1:9195 completed
curl -fsS http://127.0.0.1:9195/metrics > /tmp/chaos_metrics.txt
# The scripted preemption notice was observed...
grep -q '^# TYPE repex_preemptions_total counter$' /tmp/chaos_metrics.txt
grep -Eq '^repex_preemptions_total [1-9][0-9]*$' /tmp/chaos_metrics.txt
# ...and the shrink is visible: the node loss (8 -> 2 cores) plus the
# elastic resize left pilot slot 0 at one core, while the preempted
# slot 1 finished on its full-size failover replacement.
grep -Eq '^repex_pilot_cores\{pilot="0"\} 1$' /tmp/chaos_metrics.txt
grep -Eq '^repex_pilot_cores\{pilot="1"\} 8$' /tmp/chaos_metrics.txt
stop "$pid"
# Resource loss must never consume replica fault budgets: the run
# summary reports every killed segment relaunched and nothing dropped.
grep -Eq 'dropped=0 relaunches=[1-9][0-9]*' /tmp/chaos.log
