#!/usr/bin/env bash
# Feedback-trigger smoke: the closed-loop policy end to end through the
# config file, with the rolling-window acceptance gauge visible on
# /metrics.
set -euo pipefail
# shellcheck source=scripts/ci/lib.sh
. "$(dirname "$0")/lib.sh"
cd "$(repo_root)"

go build -o /tmp/repex ./cmd/repex
/tmp/repex -sim configs/feedback_small.json \
           -res configs/small_cluster_16.json \
           -listen 127.0.0.1:9197 &
pid=$!
wait_http http://127.0.0.1:9197/status
curl -fsS http://127.0.0.1:9197/status | tee /tmp/status_fb.json
grep -q '"trigger": "feedback"' /tmp/status_fb.json
wait_state http://127.0.0.1:9197 completed
curl -fsS http://127.0.0.1:9197/metrics > /tmp/metrics_fb.txt
grep -q '^# TYPE repex_acceptance_ratio_window gauge$' /tmp/metrics_fb.txt
grep -Eq '^repex_acceptance_ratio_window\{dim="0",pair="0"\} [0-9.eE+-]+$' /tmp/metrics_fb.txt
grep -Eq '^repex_acceptance_window_events [0-9]+$' /tmp/metrics_fb.txt
# Per-dimension controller gauges: target and saturation (reachable
# target, so the diagnostic must read 0).
grep -Eq '^repex_feedback_target\{dim="0"\} 0\.35$' /tmp/metrics_fb.txt
grep -Eq '^repex_feedback_saturated\{dim="0"\} 0$' /tmp/metrics_fb.txt
stop "$pid"
