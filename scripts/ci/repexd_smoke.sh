#!/usr/bin/env bash
# repexd smoke: the multi-run daemon end to end — launch the feedback
# workload over HTTP, poll it to completion, check the aggregate scrape
# carries the per-run label and the flight-recorder endpoints serve,
# resize the shared core pool through PATCH /pool, then cancel a long
# second run and assert it reaches "cancelled". The daemon itself must
# drain and exit 0 on SIGTERM.
set -euo pipefail
# shellcheck source=scripts/ci/lib.sh
. "$(dirname "$0")/lib.sh"
cd "$(repo_root)"

go build -o /tmp/repexd ./cmd/repexd
/tmp/repexd -listen 127.0.0.1:9199 -total-cores 64 &
pid=$!
wait_http http://127.0.0.1:9199/healthz
jq -n --slurpfile sim configs/feedback_small.json \
      --slurpfile res configs/small_cluster_16.json \
      '{sim: $sim[0], res: $res[0]}' > /tmp/launch.json
id=$(curl -fsS -X POST http://127.0.0.1:9199/runs \
       -d @/tmp/launch.json | jq -r .id)
[ -n "$id" ] && [ "$id" != null ]
wait_state "http://127.0.0.1:9199/runs/$id" completed
curl -fsS http://127.0.0.1:9199/metrics > /tmp/agg.txt
grep -Eq "^repex_exchange_events_total\{run=\"$id\"\} [0-9]+$" /tmp/agg.txt
grep -q '^repexd_runs{state="completed"} 1$' /tmp/agg.txt
# Flight recorder: every run carries one; the trace endpoint must serve
# loadable Chrome trace-event JSON with complete ("X") spans, and the
# aggregate scrape the span counters.
curl -fsS "http://127.0.0.1:9199/runs/$id/trace" > /tmp/trace.json
jq -e '[.traceEvents[] | select(.ph=="X")] | length > 0' /tmp/trace.json
jq -e '.displayTimeUnit == "ms"' /tmp/trace.json
grep -Eq "^repex_trace_spans_total\{run=\"$id\"\} [1-9][0-9]*$" /tmp/agg.txt
grep -Eq "^repex_trace_dropped_total\{run=\"$id\"\} [0-9]+$" /tmp/agg.txt
# Elastic pool: shrink below the workload's 16 cores, watch admission
# reject, grow back and watch it admit again.
total=$(curl -fsS -X PATCH http://127.0.0.1:9199/pool \
          -d '{"total_cores": 8}' | jq -r .total_cores)
[ "$total" = 8 ]
code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST \
         http://127.0.0.1:9199/runs -d @/tmp/launch.json)
[ "$code" = 429 ] || { echo "launch against the shrunk pool: $code, want 429"; exit 1; }
total=$(curl -fsS -X PATCH http://127.0.0.1:9199/pool \
          -d '{"total_cores": 64}' | jq -r .total_cores)
[ "$total" = 64 ]
# A long-budget second run, cancelled mid-flight through the API.
jq '.sim.cycles = 400000 | .sim.trigger = "barrier"
    | del(.sim.pattern, .sim.async_window_sec, .sim.target_acceptance)' \
   /tmp/launch.json > /tmp/launch_long.json
id2=$(curl -fsS -X POST http://127.0.0.1:9199/runs \
        -d @/tmp/launch_long.json | jq -r .id)
for _ in $(seq 1 100); do
  ev=$(curl -fsS "http://127.0.0.1:9199/runs/$id2/status" | jq -r .exchange_events)
  [ "$ev" != null ] && [ "$ev" -ge 2 ] && break
  sleep 0.1
done
curl -fsS -X DELETE "http://127.0.0.1:9199/runs/$id2" >/dev/null
wait_state "http://127.0.0.1:9199/runs/$id2" cancelled
stop "$pid"
