#!/usr/bin/env bash
# Shared helpers for the CI smoke scripts (scripts/ci/*.sh). Each
# script is standalone: it anchors itself at the repository root,
# builds what it needs, and fails on the first broken assertion — the
# same exit semantics locally and in the workflow.

# repo_root prints the repository root (two levels above this file).
repo_root() {
  cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd
}

# wait_http URL: polls until the URL answers 200 (10 s budget).
wait_http() {
  for _ in $(seq 1 50); do
    if curl -fsS "$1" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.2
  done
  echo "no answer from $1" >&2
  return 1
}

# wait_state BASE STATE: polls BASE/status until the run reports the
# wanted lifecycle state (20 s budget).
wait_state() {
  for _ in $(seq 1 100); do
    if [ "$(curl -fsS "$1/status" 2>/dev/null | jq -r .state)" = "$2" ]; then
      return 0
    fi
    sleep 0.2
  done
  echo "run never reached state $2; last status:" >&2
  curl -fsS "$1/status" >&2 || true
  return 1
}

# stop PID: SIGTERMs a smoke server and asserts it exits 0 — the
# graceful shutdown path is part of what the smokes cover, so a drain
# that hangs, panics or exits dirty must fail the script.
stop() {
  kill "$1"
  local rc=0
  wait "$1" || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "pid $1 exited $rc after SIGTERM, want 0" >&2
    return 1
  fi
}

# COVERAGE_FLOOR is the checked-in statement-coverage gate (percent)
# that check_coverage enforces. Raise it as coverage grows; never lower
# it to make a build pass — deleting tests is what it exists to catch.
COVERAGE_FLOOR=74

# check_coverage PROFILE: asserts `go tool cover` total statement
# coverage of an existing -coverprofile file is at or above
# COVERAGE_FLOOR percent.
check_coverage() {
  local total
  total=$(go tool cover -func="$1" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
  if [ -z "$total" ]; then
    echo "no total in coverage profile $1" >&2
    return 1
  fi
  if ! awk -v t="$total" -v f="$COVERAGE_FLOOR" 'BEGIN {exit !(t >= f)}'; then
    echo "total coverage ${total}% is below the ${COVERAGE_FLOOR}% floor" >&2
    return 1
  fi
  echo "total coverage ${total}% (floor ${COVERAGE_FLOOR}%)"
}
