#!/usr/bin/env bash
# Coverage gate: the full test suite's statement coverage must stay at
# or above the checked-in floor (COVERAGE_FLOOR in lib.sh). The floor
# ratchets up as tests grow; a drop below it means tests were deleted
# or new code landed untested.
set -euo pipefail
# shellcheck source=scripts/ci/lib.sh
. "$(dirname "$0")/lib.sh"
cd "$(repo_root)"

profile=$(mktemp /tmp/repro-cover.XXXXXX)
trap 'rm -f "$profile"' EXIT
go test -coverprofile="$profile" ./...
check_coverage "$profile"
