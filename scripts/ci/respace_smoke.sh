#!/usr/bin/env bash
# Respace smoke: a deliberately mis-spaced ladder (3 K gaps, one 82 K
# cliff) with the respace block armed must saturate the feedback
# controller, re-fit at least once, clear the diagnostic, and finish
# with its rolling acceptance inside the deadband of the 0.35 target.
set -euo pipefail
# shellcheck source=scripts/ci/lib.sh
. "$(dirname "$0")/lib.sh"
cd "$(repo_root)"

go build -o /tmp/repex ./cmd/repex
/tmp/repex -sim configs/respace_small.json \
           -res configs/small_cluster_16.json \
           -listen 127.0.0.1:9199 > /tmp/respace.log 2>&1 &
pid=$!
wait_http http://127.0.0.1:9199/status
# The run is short; poll until a re-fit lands.
ok=0
for _ in $(seq 1 50); do
  if curl -fsS http://127.0.0.1:9199/metrics | \
     grep -Eq '^repex_respacings_total\{dim="0"\} [1-9]'; then
    ok=1
    break
  fi
  sleep 0.2
done
if [ "$ok" != 1 ]; then
  echo "no ladder re-fit ever landed"
  curl -fsS http://127.0.0.1:9199/metrics | grep -E 'repex_(respacings|feedback)_' || true
  exit 1
fi
curl -fsS http://127.0.0.1:9199/status | grep -q '"respace"'
curl -fsS http://127.0.0.1:9199/status | grep -q '"refits"'
wait_state http://127.0.0.1:9199 completed
# Acting on the diagnostic must clear it: the run ends unsaturated,
# with the re-fitted grid's rolling acceptance near the set point.
curl -fsS http://127.0.0.1:9199/metrics | \
  grep -Eq '^repex_feedback_saturated\{dim="0"\} 0$'
measured=$(curl -fsS http://127.0.0.1:9199/metrics | \
  awk '/^repex_feedback_acceptance_measured\{dim="0"\}/ {print $2}')
if ! awk -v m="$measured" 'BEGIN {exit !(m >= 0.25 && m <= 0.45)}'; then
  echo "final rolling acceptance $measured outside 0.35 +/- 0.1"
  exit 1
fi
stop "$pid"
grep -q 'RESPACED' /tmp/respace.log
