#!/usr/bin/env bash
# Observability smoke: run a small virtual simulation with the status
# server listening, then check /status and /metrics answer 200 with
# well-formed payloads (fails on non-200 via curl -f and on malformed
# Prometheus output via the greps), and that the -trace export writes
# Perfetto-loadable Chrome trace-event JSON.
set -euo pipefail
# shellcheck source=scripts/ci/lib.sh
. "$(dirname "$0")/lib.sh"
cd "$(repo_root)"

go build -o /tmp/repex ./cmd/repex
/tmp/repex -sim configs/async_ph_small.json \
           -res configs/small_cluster_16.json \
           -listen 127.0.0.1:9196 &
pid=$!
wait_http http://127.0.0.1:9196/status
curl -fsS http://127.0.0.1:9196/status | tee /tmp/status.json
grep -q '"state"' /tmp/status.json
grep -q '"exchange_events"' /tmp/status.json
# Scrape after completion so the SIGTERM below hits the post-run
# serving loop and the exit code is deterministically 0.
wait_state http://127.0.0.1:9196 completed
curl -fsS http://127.0.0.1:9196/metrics > /tmp/metrics.txt
grep -q '^# TYPE repex_exchange_events_total counter$' /tmp/metrics.txt
grep -Eq '^repex_exchange_events_total [0-9]+$' /tmp/metrics.txt
grep -q '^# TYPE repex_md_exec_seconds histogram$' /tmp/metrics.txt
grep -Eq '^repex_md_exec_seconds_bucket\{le="\+Inf"\} [0-9]+$' /tmp/metrics.txt
# Every sample line must be "name{labels} value".
if grep -vE '^(#|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+|\+Inf|$)' /tmp/metrics.txt; then
  echo "malformed Prometheus exposition" && exit 1
fi
stop "$pid"

# Flight-recorder export: the same run with -trace writes
# Perfetto-loadable Chrome trace-event JSON at exit, with the MD
# segments on the replica tracks.
/tmp/repex -sim configs/async_ph_small.json \
           -res configs/small_cluster_16.json \
           -trace /tmp/run_trace.json
jq -e '[.traceEvents[] | select(.ph=="X" and .name=="md")] | length > 0' /tmp/run_trace.json
jq -e '.displayTimeUnit == "ms"' /tmp/run_trace.json
