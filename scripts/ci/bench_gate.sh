#!/usr/bin/env bash
# Per-completion dispatcher cost: repetitions gated against the
# committed median baseline by cmd/benchcheck (>15% median regression
# fails; update BENCH_baseline.json in the same PR when intentional, or
# when the runner class changes — absolute ns baselines are machine
# specific; the ratio gates are not). Two runs share one stream: the
# small legs at 10x for noise, the scaling legs (1024/4096 replicas,
# the sharded-exchange pair) at 2x to keep the wall time bounded. The
# 65536-replica leg (BenchmarkDispatcher64K) is opt-in via
# REPEX_BENCH_64K and deliberately not gated.
set -euo pipefail
# shellcheck source=scripts/ci/lib.sh
. "$(dirname "$0")/lib.sh"
cd "$(repo_root)"

go test -run '^$' -bench 'BenchmarkDispatcher$/^(64|256)$|BenchmarkDispatcherBus$|BenchmarkDispatcherTrace$' \
  -benchtime 10x -count 5 -json . | tee BENCH_dispatcher.json
go test -run '^$' -bench 'BenchmarkDispatcher$/^(1024|4096)$|BenchmarkExchangeSharding$' \
  -benchtime 2x -count 5 -json . | tee -a BENCH_dispatcher.json
go run ./cmd/benchcheck -baseline BENCH_baseline.json -bench BENCH_dispatcher.json
