#!/usr/bin/env bash
# Saturation smoke: a deliberately unreachable target (0.9 on a ladder
# whose natural acceptance sits near 0.3) must raise the per-dimension
# ladder-spacing diagnostic instead of silently parking at the window
# clamp.
set -euo pipefail
# shellcheck source=scripts/ci/lib.sh
. "$(dirname "$0")/lib.sh"
cd "$(repo_root)"

go build -o /tmp/repex ./cmd/repex
/tmp/repex -sim configs/feedback_small.json \
           -res configs/small_cluster_16.json \
           -target-acceptance 0.9 -window-events 4 \
           -listen 127.0.0.1:9198 > /tmp/sat.log 2>&1 &
pid=$!
wait_http http://127.0.0.1:9198/status
# The run is short; poll until the diagnostic raises.
ok=0
for _ in $(seq 1 50); do
  if curl -fsS http://127.0.0.1:9198/metrics | \
     grep -Eq '^repex_feedback_saturated\{dim="0"\} 1$'; then
    ok=1
    break
  fi
  sleep 0.2
done
if [ "$ok" != 1 ]; then
  echo "saturation diagnostic never raised"
  curl -fsS http://127.0.0.1:9198/metrics | grep repex_feedback_ || true
  exit 1
fi
curl -fsS http://127.0.0.1:9198/status | grep -q '"saturated": true'
# The summary SATURATED line only prints once the run completes; the
# gauge can read 1 mid-run, so wait for the completed state before
# stopping the server.
wait_state http://127.0.0.1:9198 completed
stop "$pid"
grep -q 'SATURATED' /tmp/sat.log
