#!/usr/bin/env bash
# Fuzz gate: a short coverage-guided fuzz of the daemon's
# network-facing launch parser, seeded from every committed config
# file. 30 s finds shallow panics (the kind config refactors
# introduce) without holding the build hostage; crashers land in
# internal/config/testdata/fuzz/ for triage.
set -euo pipefail
# shellcheck source=scripts/ci/lib.sh
. "$(dirname "$0")/lib.sh"
cd "$(repo_root)"

go test ./internal/config/ -fuzz FuzzParseLaunch -fuzztime 30s
